"""Wire codecs: protocol payloads and service envelopes as JSON.

The deployable service moves the simulator's typed payloads across real
process boundaries (TCP streams, write-ahead logs), so every payload
class gets a stable dict form here.  The envelope is the service-layer
unit of transmission: one sender step's payloads plus the identity that
makes retry-until-acked delivery safe.

Envelope identity is the triple ``(sender, incarnation, seq)``:

* ``seq`` counts envelopes per sender *incarnation*;
* ``incarnation`` counts the sender's recoveries, so a restarted node
  can never collide with sequence numbers its previous life consumed —
  receivers deduplicate on the full triple, and the dedup set is
  durable because every applied envelope's identity lands in the
  receiver's write-ahead log (:mod:`repro.service.wal`).

Control kinds (``ack``, ``state-query``, ``state-transfer``, ``submit``)
ride the same envelope format; only ``msg`` envelopes reach the hosted
protocol state machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.messages import (
    DecidedMessage,
    GoMessage,
    StageMessage,
    VoteMessage,
)
from repro.errors import ServiceError
from repro.sim.message import Payload, RawPayload

#: Envelope kinds the service understands.  ``msg`` carries protocol
#: payloads; the rest are service-layer control traffic.
KINDS = ("msg", "ack", "state-query", "state-transfer", "submit")


def payload_to_dict(payload: Payload) -> dict[str, Any]:
    """The stable dict form of one protocol payload."""
    if isinstance(payload, GoMessage):
        return {"k": "go", "coins": list(payload.coins)}
    if isinstance(payload, VoteMessage):
        return {"k": "vote", "vote": payload.vote}
    if isinstance(payload, StageMessage):
        return {
            "k": "stage",
            "phase": payload.phase,
            "stage": payload.stage,
            "value": payload.value,
        }
    if isinstance(payload, DecidedMessage):
        return {"k": "decided", "value": payload.value}
    if isinstance(payload, RawPayload):
        return {"k": "raw", "data": payload.data}
    raise ServiceError(
        f"no wire form for payload type {type(payload).__name__}"
    )


def payload_from_dict(data: dict[str, Any]) -> Payload:
    """Rebuild a payload from :func:`payload_to_dict` output."""
    kind = data.get("k")
    if kind == "go":
        return GoMessage(coins=tuple(data["coins"]))
    if kind == "vote":
        return VoteMessage(vote=data["vote"])
    if kind == "stage":
        return StageMessage(
            phase=data["phase"], stage=data["stage"], value=data["value"]
        )
    if kind == "decided":
        return DecidedMessage(value=data["value"])
    if kind == "raw":
        return RawPayload(data=data["data"])
    raise ServiceError(f"unknown wire payload kind {kind!r}: {data!r}")


@dataclass(frozen=True)
class ServiceEnvelope:
    """One service-layer transmission unit.

    Attributes:
        kind: one of :data:`KINDS`.
        sender: sending node's pid.
        incarnation: sender's recovery count when the envelope was
            first created (identity component, see module docstring).
        seq: per-(sender, incarnation) sequence number; ``-1`` for
            unsequenced control traffic (acks).
        payloads: protocol payloads (``msg`` envelopes only).
        body: control data — the acked ``(incarnation, seq)`` pair for
            ``ack``, the transferred state for ``state-transfer``.
    """

    kind: str
    sender: int
    incarnation: int = 0
    seq: int = -1
    payloads: tuple[Payload, ...] = ()
    body: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServiceError(
                f"unknown envelope kind {self.kind!r}; choose from {KINDS}"
            )

    @property
    def identity(self) -> tuple[int, int, int]:
        """The dedup key ``(sender, incarnation, seq)``."""
        return (self.sender, self.incarnation, self.seq)

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "kind": self.kind,
            "sender": self.sender,
            "incarnation": self.incarnation,
            "seq": self.seq,
        }
        if self.payloads:
            doc["payloads"] = [payload_to_dict(p) for p in self.payloads]
        if self.body:
            doc["body"] = self.body
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ServiceEnvelope":
        try:
            return cls(
                kind=doc["kind"],
                sender=doc["sender"],
                incarnation=doc.get("incarnation", 0),
                seq=doc.get("seq", -1),
                payloads=tuple(
                    payload_from_dict(p) for p in doc.get("payloads", ())
                ),
                body=doc.get("body", {}),
            )
        except (KeyError, TypeError) as exc:
            raise ServiceError(f"malformed envelope: {doc!r}") from exc

    def encode(self) -> bytes:
        """One newline-terminated JSON line (the TCP framing)."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")

    @classmethod
    def decode(cls, line: bytes | str) -> "ServiceEnvelope":
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"undecodable envelope line: {line!r}") from exc
        return cls.from_dict(doc)
