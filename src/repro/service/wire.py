"""Wire codecs: protocol payloads and service envelopes as JSON.

The deployable service moves the simulator's typed payloads across real
process boundaries (TCP streams, write-ahead logs), so every payload
class gets a stable dict form here.  The envelope is the service-layer
unit of transmission: one sender step's payloads plus the identity that
makes retry-until-acked delivery safe.

Envelope identity is the triple ``(sender, incarnation, seq)``:

* ``seq`` counts envelopes per sender *incarnation*;
* ``incarnation`` counts the sender's recoveries, so a restarted node
  can never collide with sequence numbers its previous life consumed —
  receivers deduplicate on the full triple, and the dedup set is
  durable because every applied envelope's identity lands in the
  receiver's write-ahead log (:mod:`repro.service.wal`).

Control kinds (``ack``, ``state-query``, ``state-transfer``, ``submit``)
ride the same envelope format; only ``msg`` envelopes reach the hosted
protocol state machine.

**Multi-transaction envelopes (wire v2).**  A node can host many
concurrent protocol instances, one per transaction; each ``msg``
envelope then carries *groups* — ``(txn_id, payloads)`` pairs — so one
flush batches the outgoing traffic of several instances into a single
transmission per destination.  The encoding is versioned by shape, not
by a version field: an envelope whose only group belongs to the default
transaction (:data:`DEFAULT_TXN`) encodes in the original v1 form
(``payloads``), so single-transaction traffic and the WALs derived from
it are byte-identical to the pre-multiplexer service; anything else
encodes the groups under the ``txns`` key, which v1 never emitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.messages import (
    DecidedMessage,
    GoMessage,
    StageMessage,
    VoteMessage,
)
from repro.errors import ServiceError
from repro.sim.message import Payload, RawPayload

#: Envelope kinds the service understands.  ``msg`` carries protocol
#: payloads; the rest are service-layer control traffic.
KINDS = ("msg", "ack", "state-query", "state-transfer", "submit")

#: The transaction id of the original single-transaction service.  A v1
#: envelope or WAL record, which predates transaction ids entirely,
#: always denotes this transaction.
DEFAULT_TXN = 0

#: One transaction's payloads inside an envelope: ``(txn_id, payloads)``.
PayloadGroup = tuple[int, tuple[Payload, ...]]


def payload_to_dict(payload: Payload) -> dict[str, Any]:
    """The stable dict form of one protocol payload."""
    if isinstance(payload, GoMessage):
        return {"k": "go", "coins": list(payload.coins)}
    if isinstance(payload, VoteMessage):
        return {"k": "vote", "vote": payload.vote}
    if isinstance(payload, StageMessage):
        return {
            "k": "stage",
            "phase": payload.phase,
            "stage": payload.stage,
            "value": payload.value,
        }
    if isinstance(payload, DecidedMessage):
        return {"k": "decided", "value": payload.value}
    if isinstance(payload, RawPayload):
        return {"k": "raw", "data": payload.data}
    raise ServiceError(
        f"no wire form for payload type {type(payload).__name__}"
    )


def payload_from_dict(data: dict[str, Any]) -> Payload:
    """Rebuild a payload from :func:`payload_to_dict` output."""
    kind = data.get("k")
    if kind == "go":
        return GoMessage(coins=tuple(data["coins"]))
    if kind == "vote":
        return VoteMessage(vote=data["vote"])
    if kind == "stage":
        return StageMessage(
            phase=data["phase"], stage=data["stage"], value=data["value"]
        )
    if kind == "decided":
        return DecidedMessage(value=data["value"])
    if kind == "raw":
        return RawPayload(data=data["data"])
    raise ServiceError(f"unknown wire payload kind {kind!r}: {data!r}")


@dataclass(frozen=True)
class ServiceEnvelope:
    """One service-layer transmission unit.

    Attributes:
        kind: one of :data:`KINDS`.
        sender: sending node's pid.
        incarnation: sender's recovery count when the envelope was
            first created (identity component, see module docstring).
        seq: per-(sender, incarnation) sequence number; ``-1`` for
            unsequenced control traffic (acks).
        payloads: protocol payloads of the default transaction (the v1
            form; ``msg`` envelopes only).
        groups: per-transaction payload groups (the v2 multi-transaction
            form).  At most one of ``payloads``/``groups`` is set; use
            :meth:`msg` to build outgoing protocol envelopes in normal
            form and :meth:`payload_groups` to read either form.
        body: control data — the acked ``(incarnation, seq)`` pair for
            ``ack``, the transferred state for ``state-transfer``.
    """

    kind: str
    sender: int
    incarnation: int = 0
    seq: int = -1
    payloads: tuple[Payload, ...] = ()
    groups: tuple[PayloadGroup, ...] = ()
    body: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ServiceError(
                f"unknown envelope kind {self.kind!r}; choose from {KINDS}"
            )
        if self.payloads and self.groups:
            raise ServiceError(
                "an envelope carries v1 payloads or v2 groups, never both"
            )

    @property
    def identity(self) -> tuple[int, int, int]:
        """The dedup key ``(sender, incarnation, seq)``."""
        return (self.sender, self.incarnation, self.seq)

    @classmethod
    def msg(
        cls,
        sender: int,
        incarnation: int,
        seq: int,
        groups: Iterable[tuple[int, Iterable[Payload]]],
    ) -> "ServiceEnvelope":
        """An outgoing protocol envelope in wire normal form.

        A single default-transaction group becomes a v1 ``payloads``
        envelope (byte-identical to the pre-multiplexer encoding);
        anything else carries v2 ``groups``.
        """
        normal = tuple(
            (txn, tuple(payloads)) for txn, payloads in groups if payloads
        )
        if len(normal) == 1 and normal[0][0] == DEFAULT_TXN:
            return cls(
                kind="msg",
                sender=sender,
                incarnation=incarnation,
                seq=seq,
                payloads=normal[0][1],
            )
        return cls(
            kind="msg",
            sender=sender,
            incarnation=incarnation,
            seq=seq,
            groups=normal,
        )

    def payload_groups(self) -> tuple[PayloadGroup, ...]:
        """The per-transaction view of this envelope's payloads.

        Reads both wire forms: v1 payloads are the default transaction's
        single group.
        """
        if self.groups:
            return self.groups
        if self.payloads:
            return ((DEFAULT_TXN, self.payloads),)
        return ()

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "kind": self.kind,
            "sender": self.sender,
            "incarnation": self.incarnation,
            "seq": self.seq,
        }
        if self.payloads:
            doc["payloads"] = [payload_to_dict(p) for p in self.payloads]
        if self.groups:
            doc["txns"] = [
                [txn, [payload_to_dict(p) for p in payloads]]
                for txn, payloads in self.groups
            ]
        if self.body:
            doc["body"] = self.body
        return doc

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ServiceEnvelope":
        try:
            return cls(
                kind=doc["kind"],
                sender=doc["sender"],
                incarnation=doc.get("incarnation", 0),
                seq=doc.get("seq", -1),
                payloads=tuple(
                    payload_from_dict(p) for p in doc.get("payloads", ())
                ),
                groups=tuple(
                    (
                        int(txn),
                        tuple(payload_from_dict(p) for p in payloads),
                    )
                    for txn, payloads in doc.get("txns", ())
                ),
                body=doc.get("body", {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed envelope: {doc!r}") from exc

    def encode(self) -> bytes:
        """One newline-terminated JSON line (the TCP framing)."""
        return (
            json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")

    @classmethod
    def decode(cls, line: bytes | str) -> "ServiceEnvelope":
        if isinstance(line, bytes):
            line = line.decode("utf-8")
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"undecodable envelope line: {line!r}") from exc
        return cls.from_dict(doc)
