"""E8 — Theorem 17: clock ticks are unbounded; rounds are the measure.

Claim: no protocol terminates in a bounded expected number of clock
ticks, even with synchronous processors (Theorem 17) — which is why the
paper defines asynchronous rounds, in which Protocol 2 terminates in a
small expected constant (Theorem 10).

Workload: all-commit votes under the proof-style adversary that delays
*every* delivery by ``D`` cycles, sweeping ``D``.  The two series to
contrast: decision clock ticks (grow without bound, ~linearly in ``D``)
and decision asynchronous rounds (stay a small constant, because a
round's end is defined relative to the receipt of the previous round's
messages and stretches with the delay).
"""

from __future__ import annotations

from functools import partial

from repro.analysis.stats import summarize
from repro.analysis.tables import ResultTable
from repro.engine import run_trials
from repro.lowerbound.theorem17 import run_delay_point

_K = 4


def _delay_trial(seed: int, n: int, delay_cycles: int):
    """One picklable E8 trial: the delay-D schedule at one seed."""
    return run_delay_point(n=n, delay_cycles=delay_cycles, K=_K, seed=seed)


def run(
    trials: int = 15,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E8 and render its table."""
    n = 5
    delays = (1, 4, 16) if quick else (1, 2, 4, 8, 16, 32, 64)
    trials = min(trials, 4) if quick else trials
    table = ResultTable(
        title=(
            "E8 (Theorem 17): decision time vs adversary delay D -- "
            "paper: ticks unbounded, rounds constant"
        ),
        columns=[
            "n",
            "delay D (cycles)",
            "trials",
            "mean ticks",
            "mean rounds",
            "max rounds",
            "on time",
        ],
    )
    for delay in delays:
        ticks = []
        rounds = []
        on_time = 0
        for point in run_trials(
            partial(_delay_trial, n=n, delay_cycles=delay),
            trials=trials,
            base_seed=base_seed,
            workers=workers,
        ):
            if point.decision_ticks is not None:
                ticks.append(point.decision_ticks)
            if point.decision_rounds is not None:
                rounds.append(point.decision_rounds)
            on_time += point.on_time
        tick_summary = summarize(ticks)
        round_summary = summarize(rounds)
        table.add_row(
            n,
            delay,
            trials,
            tick_summary.mean,
            round_summary.mean,
            int(round_summary.maximum),
            f"{on_time}/{trials}",
        )
    table.add_note(
        "ticks grow ~linearly with D (no bounded-expected-tick protocol "
        "exists); asynchronous rounds absorb the delay and stay constant, "
        "validating the paper's round measure."
    )
    return table
