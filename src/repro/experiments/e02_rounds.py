"""E2 — Theorem 10: Protocol 2 decides in <= 14 expected async rounds.

Claim: all nonfaulty processors decide in a constant expected number of
asynchronous rounds; the paper's accounting gives 14 (Remark 3: close to
12 with longer coin lists).

Workload: full commit runs with all-commit votes (the commit path runs
the longest — abort short-circuits the vote collection), over a sweep of
``n`` and three adversaries: synchronous, on-time random delays, and fair
random scheduling.  The metric is the asynchronous round (per the paper's
inductive definition, computed post-hoc) in which the last nonfaulty
processor decided.
"""

from __future__ import annotations

from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import OnTimeAdversary, SynchronousAdversary
from repro.analysis.montecarlo import (
    CommitTrialConfig,
    run_commit_batch,
)
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory

_K = 4


def run(
    trials: int = 60,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E2 and render its table."""
    sizes = (5, 9) if quick else (3, 5, 9, 15)
    trials = min(trials, 10) if quick else trials
    adversaries = {
        "synchronous": SeededFactory.of(SynchronousAdversary),
        "ontime-jitter": SeededFactory.of(OnTimeAdversary, K=_K),
        "random": SeededFactory.of(RandomAdversary),
    }
    table = ResultTable(
        title=(
            "E2 (Theorem 10): asynchronous rounds to decision for "
            "Protocol 2 -- paper: expected <= 14"
        ),
        columns=[
            "n",
            "adversary",
            "trials",
            "mean rounds",
            "95% CI high",
            "max rounds",
            "terminated",
        ],
    )
    for n in sizes:
        for name, factory in adversaries.items():
            config = CommitTrialConfig(
                votes=[1] * n,
                adversary_factory=factory,
                K=_K,
            )
            batch = run_commit_batch(
                config, trials=trials, base_seed=base_seed, workers=workers
            )
            rounds = batch.summary("rounds")
            table.add_row(
                n,
                name,
                len(batch),
                rounds.mean,
                rounds.ci_high,
                int(rounds.maximum),
                f"{batch.termination_rate:.0%}",
            )
    table.add_note(
        "rounds follow the paper's inductive asynchronous-round definition, "
        "computed from the trace with ground-truth fault knowledge."
    )
    return table
