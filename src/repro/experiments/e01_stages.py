"""E1 — Lemma 8: Protocol 1 decides in < 4 expected stages.

Claim: with a shared coin list of length >= n, all nonfaulty processors
decide in a constant expected number of stages (the paper derives
E[X] < 4, and Remark 3 notes it approaches 3 as the list grows).

Workload: standalone agreement with maximally-split inputs (0,1,0,1,...)
— the hardest honest input — over a sweep of ``n``, under both a fair
random scheduler and the camp-splitting pattern adversary.  The reported
metric is the max stage at which any nonfaulty processor decided.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.adversary.base import Adversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.splitter import SplitVoteAdversary
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory
from repro.experiments.common import agreement_trial, alternating_values


def _stage_trial(
    seed: int, n: int, t: int, adversary_factory: Callable[[int], Adversary]
):
    """One picklable E1 trial: split inputs, one adversary, one seed."""
    _, metrics = agreement_trial(
        n=n,
        t=t,
        values=alternating_values(n),
        adversary=adversary_factory(seed),
        seed=seed,
    )
    return metrics


def run(
    trials: int = 60,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E1 and render its table."""
    sizes = (4, 8) if quick else (4, 8, 16, 24)
    trials = min(trials, 12) if quick else trials

    def adversaries(n: int) -> dict[str, SeededFactory]:
        return {
            "random": SeededFactory.of(RandomAdversary),
            "splitter": SeededFactory.of(SplitVoteAdversary, n=n),
        }
    table = ResultTable(
        title=(
            "E1 (Lemma 8): expected stages of Protocol 1 with |coins| >= n "
            "-- paper: < 4"
        ),
        columns=[
            "n",
            "t",
            "adversary",
            "trials",
            "mean stages",
            "95% CI high",
            "max stages",
            "terminated",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for name, factory in adversaries(n).items():
            batch = run_custom_batch(
                partial(_stage_trial, n=n, t=t, adversary_factory=factory),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            )
            stages = batch.summary("decision_stage")
            table.add_row(
                n,
                t,
                name,
                len(batch),
                stages.mean,
                stages.ci_high,
                int(stages.maximum),
                f"{batch.termination_rate:.0%}",
            )
    table.add_note(
        "decision stage = max stage at which a nonfaulty processor decided; "
        "Lemma 8 bounds its expectation below 4."
    )
    return table
