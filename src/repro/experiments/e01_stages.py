"""E1 — Lemma 8: Protocol 1 decides in < 4 expected stages.

Claim: with a shared coin list of length >= n, all nonfaulty processors
decide in a constant expected number of stages (the paper derives
E[X] < 4, and Remark 3 notes it approaches 3 as the list grows).

Workload: standalone agreement with maximally-split inputs (0,1,0,1,...)
— the hardest honest input — over a sweep of ``n``, under both a fair
random scheduler and the camp-splitting pattern adversary.  The reported
metric is the max stage at which any nonfaulty processor decided.
"""

from __future__ import annotations

from repro.adversary.random_walk import RandomAdversary
from repro.adversary.splitter import SplitVoteAdversary
from repro.analysis.montecarlo import TrialBatch
from repro.analysis.tables import ResultTable
from repro.experiments.common import agreement_trial, alternating_values


def run(
    trials: int = 60, base_seed: int = 0, quick: bool = False
) -> ResultTable:
    """Run E1 and render its table."""
    sizes = (4, 8) if quick else (4, 8, 16, 24)
    trials = min(trials, 12) if quick else trials
    adversaries = {
        "random": lambda n, seed: RandomAdversary(seed=seed),
        "splitter": lambda n, seed: SplitVoteAdversary(n=n, seed=seed),
    }
    table = ResultTable(
        title=(
            "E1 (Lemma 8): expected stages of Protocol 1 with |coins| >= n "
            "-- paper: < 4"
        ),
        columns=[
            "n",
            "t",
            "adversary",
            "trials",
            "mean stages",
            "95% CI high",
            "max stages",
            "terminated",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for name, factory in adversaries.items():
            batch = TrialBatch()
            for i in range(trials):
                seed = base_seed + i
                _, metrics = agreement_trial(
                    n=n,
                    t=t,
                    values=alternating_values(n),
                    adversary=factory(n, seed),
                    seed=seed,
                )
                batch.add(metrics)
            stages = batch.summary("decision_stage")
            table.add_row(
                n,
                t,
                name,
                len(batch),
                stages.mean,
                stages.ci_high,
                int(stages.maximum),
                f"{batch.termination_rate:.0%}",
            )
    table.add_note(
        "decision stage = max stage at which a nonfaulty processor decided; "
        "Lemma 8 bounds its expectation below 4."
    )
    return table
