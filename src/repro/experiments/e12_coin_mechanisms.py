"""E12 (ablation) — four coin-distribution mechanisms, head to head.

The paper positions Protocol 1 among its relatives: Ben-Or [Be] flips
*local* coins (exponential expected time), Rabin [R] gets identical coins
from a *trusted dealer* (fast, stronger model), Chor-Merritt-Shmoys [CMS]
build a *weak shared* coin online (fast, but tolerates < n/6 faults),
and this paper ships *coordinator-flipped* coins in the GO message
(fast, optimal t < n/2, no added trust).

This ablation runs the identical stage machinery under all four
mechanisms (see :mod:`repro.core.coin_providers`) against the balancing
attacker — the scheduler that forces coin stages — plus a crash schedule
aimed at the weak coin's low-id shares.  Expected shape: local coins
explode; dealer and coordinator lists are flat and identical (their
difference is trust, not speed); the weak shared coin sits in between
and degrades when its low-id share holders crash.
"""

from __future__ import annotations

from functools import partial

from repro.adversary.base import CrashAt
from repro.adversary.omniscient import OmniscientBalancer
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.engine import seeds as seed_scheme
from repro.experiments.common import alternating_values, run_programs
from repro.protocols.benor import BenOrProgram
from repro.protocols.cms import CMSStyleAgreementProgram
from repro.protocols.rabin import DealerCoinAgreementProgram

_K = 4


def _build(mechanism: str, n: int, t: int, seed: int):
    values = alternating_values(n)
    if mechanism == "local (Ben-Or)":
        return [
            BenOrProgram(pid=p, n=n, t=t, initial_value=values[p])
            for p in range(n)
        ]
    if mechanism == "dealer (Rabin)":
        dealt = shared_coins(
            n, seed=seed_scheme.derive(seed, seed_scheme.DEALER_COIN_STREAM)
        )
        return [
            DealerCoinAgreementProgram(
                pid=p, n=n, t=t, initial_value=values[p], dealer_coins=dealt
            )
            for p in range(n)
        ]
    if mechanism == "weak-shared (CMS-style)":
        return [
            CMSStyleAgreementProgram(
                pid=p,
                n=n,
                t=t,
                initial_value=values[p],
                allow_sub_resilience=True,
            )
            for p in range(n)
        ]
    if mechanism == "coordinator list (this paper)":
        coins = shared_coins(
            n,
            seed=seed_scheme.derive(
                seed, seed_scheme.COORDINATOR_COIN_STREAM
            ),
        )
        return [
            AgreementProgram(
                pid=p, n=n, t=t, initial_value=values[p], coins=coins
            )
            for p in range(n)
        ]
    raise ValueError(f"unknown mechanism {mechanism!r}")


def _make_adversary(environment: str, n: int, t: int, seed: int):
    if environment == "balancer":
        return OmniscientBalancer(n=n, t=t, seed=seed)
    if environment == "balancer + low-id crash":
        # The crash targets processor 0 — the weak coin's min-id share
        # holder; list-based mechanisms should shrug it off.
        return OmniscientBalancer(
            n=n, t=t, seed=seed, crash_plan=(CrashAt(pid=0, cycle=3),)
        )
    raise ValueError(f"unknown environment {environment!r}")


def _mechanism_trial(
    seed: int, mechanism: str, environment: str, n: int, t: int, max_steps: int
):
    """One picklable E12 trial, mechanism and environment keyed by name."""
    _, metrics = run_programs(
        _build(mechanism, n, t, seed),
        _make_adversary(environment, n, t, seed),
        K=_K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    return metrics


MECHANISMS = (
    "local (Ben-Or)",
    "weak-shared (CMS-style)",
    "dealer (Rabin)",
    "coordinator list (this paper)",
)


def run(
    trials: int = 12,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E12 and render its table."""
    n = 6
    t = (n - 1) // 2
    trials = min(trials, 5) if quick else trials
    max_steps = 60_000 if quick else 250_000
    environments = ("balancer", "balancer + low-id crash")
    table = ResultTable(
        title=(
            "E12 (ablation): coin-distribution mechanisms under the "
            "balancing attacker -- local coins explode, every shared "
            "mechanism is flat; they differ in trust and fault envelope"
        ),
        columns=[
            "mechanism",
            f"max t @ n={n}",
            "environment",
            "trials",
            "mean stages",
            "max stages",
            "shared-coin stages",
            "terminated",
        ],
    )

    def max_tolerance(mechanism: str) -> int:
        if mechanism == "weak-shared (CMS-style)":
            return (n - 1) // 6  # n > 6t
        return (n - 1) // 2  # n > 2t
    for mechanism in MECHANISMS:
        for environment in environments:
            batch = run_custom_batch(
                partial(
                    _mechanism_trial,
                    mechanism=mechanism,
                    environment=environment,
                    n=n,
                    t=t,
                    max_steps=max_steps,
                ),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            )
            stages = batch.summary("stages")
            shared_used = batch.summary("shared_coin_stages")
            table.add_row(
                mechanism,
                max_tolerance(mechanism),
                environment,
                len(batch),
                stages.mean,
                int(stages.maximum),
                shared_used.mean,
                f"{batch.termination_rate:.0%}",
            )
    table.add_note(
        "dealer and coordinator rows should match: the mechanisms differ "
        "in trust model (external dealer vs in-protocol GO message), not "
        "in speed."
    )
    table.add_note(
        "the weak-shared row is a simplified CMS stand-in (DESIGN.md); "
        "'max t' shows its reduced fault envelope (n > 6t vs n > 2t) — "
        "the paper's comparison point; the rows here run it at the "
        "common t for speed comparability (allow_sub_resilience)."
    )
    return table
