"""The experiment registry: every reproduced claim, by id.

The paper has no numbered tables or figures; its quantitative claims
(lemmas, theorems, and the remarks after Theorem 11) play that role.
DESIGN.md §3 maps each claim to an experiment id; this registry maps each
id to its runner.  ``run_all`` regenerates every table (EXPERIMENTS.md is
its rendered output).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.analysis.tables import ResultTable
from repro.telemetry import registry as telemetry
from repro.telemetry.log import get_logger

_log = get_logger("experiments")
from repro.experiments import (
    e01_stages,
    e02_rounds,
    e03_ticks,
    e04_ontime_crashes,
    e05_coin_ablation,
    e06_graceful_degradation,
    e07_resilience_bound,
    e08_time_lower_bound,
    e09_baseline_safety,
    e10_benor_comparison,
    e11_fault_tolerance_sweep,
    e12_coin_mechanisms,
    e13_early_abort,
    e14_message_cost,
)
from repro.experiments.common import ExperimentInfo

EXPERIMENTS: dict[str, ExperimentInfo] = {
    info.id: info
    for info in (
        ExperimentInfo(
            id="E1",
            title="Agreement stages (Lemma 8)",
            claim="Protocol 1 decides in < 4 expected stages with |coins| >= n",
            expectation="mean decision stage below 4 for every n and adversary",
            runner=e01_stages.run,
        ),
        ExperimentInfo(
            id="E2",
            title="Commit rounds (Theorem 10)",
            claim="Protocol 2 decides in <= 14 expected asynchronous rounds",
            expectation="mean decision round well below 14",
            runner=e02_rounds.run,
        ),
        ExperimentInfo(
            id="E3",
            title="Failure-free ticks (Remark 1)",
            claim="failure-free on-time runs decide within 8K clock ticks",
            expectation="max ticks <= 8K on every run",
            runner=e03_ticks.run,
        ),
        ExperimentInfo(
            id="E4",
            title="On-time ticks with crashes (Remark 2)",
            claim="on-time runs decide in constant expected ticks despite <= t crashes",
            expectation="mean ticks stay near the failure-free value as crashes grow",
            runner=e04_ontime_crashes.run,
        ),
        ExperimentInfo(
            id="E5",
            title="Coin-list ablation (Remark 3)",
            claim="the shared coin list is what makes termination fast",
            expectation="stages explode at |coins| = 0, constant for |coins| >= 1",
            runner=e05_coin_ablation.run,
        ),
        ExperimentInfo(
            id="E6",
            title="Graceful degradation (Theorem 11)",
            claim="beyond t faults: never a conflict, only non-termination",
            expectation="conflict rate 0 at every crash count",
            runner=e06_graceful_degradation.run,
        ),
        ExperimentInfo(
            id="E7",
            title="Resilience bound (Theorem 14)",
            claim="no commit protocol for n <= 2t; threshold is sharp",
            expectation="blocks at n = 2t, decides at n = 2t + 1, no conflicts",
            runner=e07_resilience_bound.run,
        ),
        ExperimentInfo(
            id="E8",
            title="Time lower bound (Theorem 17)",
            claim="expected clock ticks unbounded; asynchronous rounds constant",
            expectation="ticks grow ~linearly with delay D, rounds flat",
            runner=e08_time_lower_bound.run,
        ),
        ExperimentInfo(
            id="E9",
            title="Baseline safety comparison (Introduction)",
            claim="late messages give [S]/[DS]-style protocols wrong answers, never Protocol 2",
            expectation="nonzero wrong answers for 2PC/3PC under lateness; zero for Protocol 2",
            runner=e09_baseline_safety.run,
        ),
        ExperimentInfo(
            id="E10",
            title="Ben-Or comparison (Section 3)",
            claim="shared coins lower Ben-Or's exponential expected time to constant",
            expectation="Ben-Or stages ~2^(n-1) under the balancer; Protocol 1 flat",
            runner=e10_benor_comparison.run,
        ),
        ExperimentInfo(
            id="E11",
            title="Fault-tolerance threshold (Section 1)",
            claim="works for every t < n/2 — optimal by Theorem 14",
            expectation="termination cliff exactly at t = ceil(n/2) - 1 crashes",
            runner=e11_fault_tolerance_sweep.run,
        ),
        ExperimentInfo(
            id="E12",
            title="Coin-mechanism ablation (related work)",
            claim=(
                "local coins are exponential; dealer [R], weak-shared "
                "[CMS], and coordinator-list coins are all fast but "
                "differ in trust and fault envelope"
            ),
            expectation=(
                "Ben-Or explodes under the balancer; all shared "
                "mechanisms flat; CMS-style max t is (n-1)//6 vs "
                "(n-1)//2 for the lists"
            ),
            runner=e12_coin_mechanisms.run,
        ),
        ExperimentInfo(
            id="E13",
            title="Early-abort ablation (Protocol 2, line 7)",
            claim=(
                "a processor whose vote is abort can implement the abort "
                "unilaterally at line 7"
            ),
            expectation=(
                "identical decisions; the first abort decision lands "
                "several ticks earlier with the optimisation on"
            ),
            runner=e13_early_abort.run,
        ),
        ExperimentInfo(
            id="E14",
            title="Message cost of commitment (Dwork-Skeen citation)",
            claim=(
                "nonblocking randomized commit pays O(n^2) messages where "
                "centralized 2PC/3PC pay O(n)"
            ),
            expectation=(
                "envelopes/n flat for 2PC/3PC, growing ~linearly in n "
                "for Protocol 2"
            ),
            runner=e14_message_cost.run,
        ),
    )
}


def run_experiment(
    experiment_id: str,
    trials: int | None = None,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run one experiment by id.

    Each trial's metric extraction already feeds the telemetry registry
    (see :mod:`repro.analysis.metrics`); this wrapper adds the
    experiment-level counter and wall-clock histogram so registry
    snapshots and the rendered tables describe the same execution.
    ``workers`` fans the trial batches out over worker processes via
    :mod:`repro.engine`; the tables are byte-identical at every count.
    """
    info = EXPERIMENTS[experiment_id]
    _log.info(
        "running experiment %s (quick=%s, workers=%s)",
        experiment_id,
        quick,
        workers,
    )
    start = time.perf_counter()
    if trials is None:
        table = info.runner(quick=quick, workers=workers)
    else:
        table = info.runner(trials=trials, quick=quick, workers=workers)
    elapsed = time.perf_counter() - start
    _log.info("experiment %s finished in %.2fs", experiment_id, elapsed)
    if telemetry.enabled():
        telemetry.count(
            "experiment_runs_total",
            help="experiment executions, by id",
            id=experiment_id,
        )
        telemetry.observe(
            "experiment_seconds",
            elapsed,
            help="wall-clock seconds per experiment execution",
            id=experiment_id,
        )
    return table


def run_all(
    quick: bool = False,
    report: Callable[[str], None] | None = None,
    workers: int | None = None,
) -> dict[str, ResultTable]:
    """Run every experiment; optionally report progress."""
    tables: dict[str, ResultTable] = {}
    for experiment_id in EXPERIMENTS:
        if report is not None:
            report(f"running {experiment_id} ...")
        tables[experiment_id] = run_experiment(
            experiment_id, quick=quick, workers=workers
        )
    return tables
