"""E13 (ablation) — the unilateral early abort of Protocol 2's line 7.

The paper remarks in passing that after line 7, "any processor that has
abort as its vote can actually implement the abort": its 0 vote makes
every processor's Protocol 1 input 0, so validity fixes the outcome.
This ablation measures what the optimisation buys: the clock tick at
which the *first* processor enters the abort decision state, with and
without it, across abort triggers (initial no-voters; a timeout-induced
abort under a transient partition).

Expected shape: identical final decisions either way (it is an
optimisation, not a semantic change), with the first abort decision
landing several ticks earlier — before the vote collection and the whole
agreement subroutine instead of after them.
"""

from __future__ import annotations

from functools import partial

from repro.adversary.partition import PartitionAdversary
from repro.adversary.standard import OnTimeAdversary
from repro.analysis.metrics import extract_metrics
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.core.api import ProtocolOutcome
from repro.core.commit import CommitProgram
from repro.sim.scheduler import Simulation

_K = 4


def _scenario_adversary(scenario: str, seed: int):
    if scenario == "timeout abort (partition)":
        return PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}],
            start_cycle=1,
            heal_cycle=30,
            seed=seed,
        )
    return OnTimeAdversary(K=_K, seed=seed)


def _abort_trial(
    seed: int,
    votes: tuple[int, ...],
    scenario: str,
    early: bool,
    max_steps: int,
):
    """One picklable E13 trial: one vote pattern, one scenario, one seed."""
    n = len(votes)
    t = (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=_K,
            early_abort=early,
        )
        for pid, vote in enumerate(votes)
    ]
    simulation = Simulation(
        programs=programs,
        adversary=_scenario_adversary(scenario, seed),
        K=_K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    outcome = ProtocolOutcome(result=simulation.run())
    return extract_metrics(outcome, programs=programs)


def run(
    trials: int = 30,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E13 and render its table."""
    n = 5
    trials = min(trials, 8) if quick else trials
    scenarios = {
        "one no-voter": (1, 1, 0, 1, 1),
        "two no-voters": (0, 1, 0, 1, 1),
        "timeout abort (partition)": (1,) * n,
    }
    table = ResultTable(
        title=(
            "E13 (ablation): unilateral early abort (the paper's line-7 "
            "aside) -- same decisions, earlier first abort"
        ),
        columns=[
            "scenario",
            "early abort",
            "trials",
            "mean first-abort ticks",
            "mean last-decision ticks",
            "abort rate",
            "consistent",
        ],
    )
    for scenario, votes in scenarios.items():
        for early in (False, True):
            batch = run_custom_batch(
                partial(
                    _abort_trial,
                    votes=votes,
                    scenario=scenario,
                    early=early,
                    max_steps=20_000,
                ),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            )
            first = batch.summary("first_decision_ticks")
            last = batch.summary("ticks")
            table.add_row(
                scenario,
                "yes" if early else "no",
                len(batch),
                first.mean,
                last.mean,
                f"{batch.rate(lambda m: m.decision == 0):.0%}",
                f"{batch.consistency_rate:.0%}",
            )
    table.add_note(
        "first-abort ticks = earliest clock at which any processor "
        "entered its decision state; with early abort the no-voters "
        "decide at line 7, before vote collection and the agreement."
    )
    return table
