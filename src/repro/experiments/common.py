"""Shared helpers for the experiment runners.

Every experiment is a function ``run(trials, base_seed, quick) ->
ResultTable``.  ``quick`` shrinks the workload to benchmark-friendly
sizes; the full sizes regenerate the EXPERIMENTS.md numbers.  All trials
derive their randomness from ``base_seed`` so tables are replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.adversary.base import Adversary
from repro.analysis.metrics import RunMetrics, extract_metrics
from repro.core.agreement import AgreementProgram
from repro.core.api import ProtocolOutcome, shared_coins
from repro.core.coins import CoinList
from repro.core.halting import HaltingMode
from repro.engine import seeds as seed_scheme
from repro.sim.process import Program
from repro.sim.scheduler import Simulation


@dataclass(frozen=True)
class ExperimentInfo:
    """Registry metadata for one experiment."""

    id: str
    title: str
    claim: str
    expectation: str
    runner: Callable[..., object]


def run_programs(
    programs: Sequence[Program],
    adversary: Adversary,
    K: int,
    t: int,
    seed: int,
    max_steps: int,
) -> tuple[ProtocolOutcome, RunMetrics]:
    """Run arbitrary programs under an adversary and extract metrics."""
    from repro.models import apply_active_model

    adversary = apply_active_model(adversary, K=K, seed=seed)
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    outcome = ProtocolOutcome(result=simulation.run())
    return outcome, extract_metrics(outcome, programs=simulation.programs)


def agreement_trial(
    n: int,
    t: int,
    values: Sequence[int],
    adversary: Adversary,
    seed: int,
    K: int = 4,
    coins: CoinList | None = None,
    halting: HaltingMode = HaltingMode.DECIDE_BROADCAST,
    max_steps: int = 100_000,
) -> tuple[ProtocolOutcome, RunMetrics]:
    """One standalone agreement run with the given adversary."""
    if coins is None:
        coins = shared_coins(n, seed=seed_scheme.coin_seed(seed))
    programs = [
        AgreementProgram(
            pid=pid,
            n=n,
            t=t,
            initial_value=value,
            coins=coins,
            halting=halting,
        )
        for pid, value in enumerate(values)
    ]
    return run_programs(
        programs, adversary, K=K, t=t, seed=seed, max_steps=max_steps
    )


def alternating_values(n: int) -> list[int]:
    """The maximally-split input pattern 0, 1, 0, 1, ..."""
    return [pid % 2 for pid in range(n)]
