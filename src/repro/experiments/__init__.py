"""The reproduction experiments E1..E11.

One module per quantitative claim of the paper (DESIGN.md §3 holds the
full index).  Each module exposes ``run(trials, base_seed, quick) ->
ResultTable``; :mod:`repro.experiments.registry` collects them and powers
both the benchmark suite and EXPERIMENTS.md.
"""

from repro.experiments import (  # noqa: F401  (re-exported for registry)
    e01_stages,
    e02_rounds,
    e03_ticks,
    e04_ontime_crashes,
    e05_coin_ablation,
    e06_graceful_degradation,
    e07_resilience_bound,
    e08_time_lower_bound,
    e09_baseline_safety,
    e10_benor_comparison,
    e11_fault_tolerance_sweep,
    e12_coin_mechanisms,
    e13_early_abort,
    e14_message_cost,
)
from repro.experiments.common import ExperimentInfo

__all__ = [
    "ExperimentInfo",
    "e01_stages",
    "e02_rounds",
    "e03_ticks",
    "e04_ontime_crashes",
    "e05_coin_ablation",
    "e06_graceful_degradation",
    "e07_resilience_bound",
    "e08_time_lower_bound",
    "e09_baseline_safety",
    "e10_benor_comparison",
    "e11_fault_tolerance_sweep",
    "e12_coin_mechanisms",
    "e13_early_abort",
    "e14_message_cost",
]
