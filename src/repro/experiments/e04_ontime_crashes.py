"""E4 — Remark 2: on-time runs decide in constant expected clock ticks.

Claim: "When the run is on-time (but not necessarily failure-free), the
expected number of clock ticks to termination is a constant."

Workload: all-commit votes, on-time delivery, with ``c`` processors
crashed early (``c`` sweeping from 0 to ``t``), including crashes in the
middle of a broadcast (final envelopes withheld from half the
survivors).  The metric is decision ticks; the shape to observe is that
the mean does not blow up as crashes increase — it stays within a small
constant multiple of the failure-free value.
"""

from __future__ import annotations

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_batch
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory

_K = 4


def run(
    trials: int = 40,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E4 and render its table."""
    sizes = (5,) if quick else (5, 9)
    trials = min(trials, 10) if quick else trials
    table = ResultTable(
        title=(
            "E4 (Remark 2): decision ticks in on-time runs with <= t "
            "crashes -- paper: constant expected"
        ),
        columns=[
            "n",
            "t",
            "crashes",
            "partial bcast",
            "trials",
            "mean ticks",
            "max ticks",
            "terminated",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for crashes in range(t + 1):
            for partial in (False, True) if crashes else (False,):
                plan = tuple(
                    CrashAt(pid=n - 1 - i, cycle=2 + i)
                    for i in range(crashes)
                )
                victims = (
                    frozenset(range(1, 1 + n // 2)) if partial else None
                )
                config = CommitTrialConfig(
                    votes=[1] * n,
                    adversary_factory=SeededFactory.of(
                        ScheduledCrashAdversary,
                        crash_plan=plan,
                        partial_broadcast_victims=victims,
                    ),
                    K=_K,
                )
                batch = run_commit_batch(
                    config,
                    trials=trials,
                    base_seed=base_seed,
                    workers=workers,
                )
                ticks = batch.summary("ticks")
                table.add_row(
                    n,
                    t,
                    crashes,
                    "yes" if partial else "no",
                    len(batch),
                    ticks.mean,
                    int(ticks.maximum),
                    f"{batch.termination_rate:.0%}",
                )
    table.add_note(
        "crashed processors are killed from cycle 2 on, one per cycle; "
        "'partial bcast' withholds the victims' final envelopes from half "
        "the survivors (crash mid-broadcast)."
    )
    return table
