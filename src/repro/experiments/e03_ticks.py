"""E3 — Remark 1: failure-free on-time runs decide within 8K clock ticks.

Claim: "If the run is failure-free and on-time, all the processors
decide within at most 8K clock ticks: 4K for Protocol 2 before calling
Protocol 1, and at most 2K for each stage of Protocol 1."

Workload: all-commit votes under the synchronous adversary (failure-free
and on time by construction), sweeping the constant ``K``.  The metric is
the largest clock reading at any decide step; the table reports it
alongside the 8K budget and verifies the bound on every single trial.
"""

from __future__ import annotations

from repro.adversary.standard import SynchronousAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_batch
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory


def run(
    trials: int = 40,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E3 and render its table."""
    ks = (2, 4) if quick else (2, 4, 8, 16)
    sizes = (5,) if quick else (5, 9)
    trials = min(trials, 10) if quick else trials
    table = ResultTable(
        title=(
            "E3 (Remark 1): decision clock ticks in failure-free on-time "
            "runs -- paper: <= 8K"
        ),
        columns=[
            "n",
            "K",
            "budget 8K",
            "trials",
            "mean ticks",
            "max ticks",
            "bound held",
        ],
    )
    for n in sizes:
        for K in ks:
            config = CommitTrialConfig(
                votes=[1] * n,
                adversary_factory=SeededFactory.of(SynchronousAdversary),
                K=K,
            )
            batch = run_commit_batch(
                config, trials=trials, base_seed=base_seed, workers=workers
            )
            ticks = batch.summary("ticks")
            bound_held = all(
                m.ticks is not None and m.ticks <= 8 * K for m in batch
            )
            table.add_row(
                n,
                K,
                8 * K,
                len(batch),
                ticks.mean,
                int(ticks.maximum),
                "yes" if bound_held else "NO",
            )
    table.add_note(
        "every run is checked to be failure-free and on time; the bound "
        "must hold per-run, not just in expectation."
    )
    return table
