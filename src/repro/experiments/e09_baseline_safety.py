"""E9 — the introduction's comparison: late messages break [S]/[DS]-style
protocols; they never break Protocol 2.

Claim: "a single violation of the timing assumptions (i.e., a late
message) can cause the protocol to produce the wrong answer" (about the
synchronous-model protocols), while Protocol 2 stays safe under any
timing and merely aborts; and the blocking variant of 2PC shows the
blocking problem those protocols were designed around.

Workload: all-commit votes, four protocols (Protocol 2, 2PC with
presume-abort timeouts, 2PC with blocking timeouts, 3PC) under three
environments: well-behaved (synchronous), late messages (random spikes),
and a coordinator that commits and crashes mid-fan-out.  Reported: the
inconsistency rate (conflicting decisions — wrong answers) and the
blocking rate.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.adversary.base import Adversary
from repro.adversary.crash import AdaptiveCrashAdversary
from repro.adversary.standard import LateMessageAdversary, SynchronousAdversary
from repro.analysis.tables import ResultTable
from repro.core.commit import CommitProgram
from repro.engine import run_trials
from repro.experiments.common import run_programs
from repro.protocols.decentralized import DecentralizedCommitProgram
from repro.protocols.threepc import ThreePCProgram
from repro.protocols.twopc import TimeoutAction, TwoPCProgram
from repro.sim.process import Program

_K = 4


def _protocol_factories(n: int, t: int) -> dict[str, Callable[[], list[Program]]]:
    return {
        "Protocol 2": lambda: [
            CommitProgram(pid=p, n=n, t=t, initial_vote=1, K=_K)
            for p in range(n)
        ],
        "2PC presume-abort": lambda: [
            TwoPCProgram(
                pid=p,
                n=n,
                initial_vote=1,
                K=_K,
                timeout_action=TimeoutAction.PRESUME_ABORT,
            )
            for p in range(n)
        ],
        "2PC blocking": lambda: [
            TwoPCProgram(
                pid=p,
                n=n,
                initial_vote=1,
                K=_K,
                timeout_action=TimeoutAction.BLOCK,
            )
            for p in range(n)
        ],
        "3PC": lambda: [
            ThreePCProgram(pid=p, n=n, initial_vote=1, K=_K) for p in range(n)
        ],
        "decentralized 1PC": lambda: [
            DecentralizedCommitProgram(pid=p, n=n, initial_vote=1, K=_K)
            for p in range(n)
        ],
    }


def _environments(n: int) -> dict[str, Callable[[int], Adversary]]:
    return {
        "well-behaved": lambda seed: SynchronousAdversary(seed=seed),
        "late messages": lambda seed: LateMessageAdversary(
            K=_K,
            seed=seed,
            late_probability=0.35,
            lateness_factor=4,
            target_senders={0},
        ),
        "crash mid-fanout": lambda seed: AdaptiveCrashAdversary(
            victims=[0],
            kill_after_sends=2,
            suppress_to=set(range(1, n)),
            seed=seed,
        ),
    }


def _safety_trial(
    seed: int, protocol: str, environment: str, n: int, t: int, max_steps: int
):
    """One picklable E9 trial, protocol and environment keyed by name."""
    build = _protocol_factories(n, t)[protocol]
    adversary = _environments(n)[environment](seed)
    _, metrics = run_programs(
        build(), adversary, K=_K, t=t, seed=seed, max_steps=max_steps
    )
    return metrics


def run(
    trials: int = 30,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E9 and render its table."""
    n = 5
    t = (n - 1) // 2
    trials = min(trials, 6) if quick else trials
    max_steps = 8_000 if quick else 20_000
    table = ResultTable(
        title=(
            "E9: safety of Protocol 2 vs synchronous-model baselines -- "
            "paper: late messages give [S]/[DS]-style protocols wrong "
            "answers, never Protocol 2"
        ),
        columns=[
            "protocol",
            "environment",
            "trials",
            "wrong answers",
            "blocked",
            "commits",
            "aborts",
        ],
    )
    for protocol_name in _protocol_factories(n, t):
        for env_name in _environments(n):
            wrong = 0
            blocked = 0
            commits = 0
            aborts = 0
            for metrics in run_trials(
                partial(
                    _safety_trial,
                    protocol=protocol_name,
                    environment=env_name,
                    n=n,
                    t=t,
                    max_steps=max_steps,
                ),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            ):
                if not metrics.consistent:
                    wrong += 1
                elif not metrics.terminated:
                    blocked += 1
                elif metrics.decision == 1:
                    commits += 1
                elif metrics.decision == 0:
                    aborts += 1
            table.add_row(
                protocol_name,
                env_name,
                trials,
                wrong,
                blocked,
                commits,
                aborts,
            )
    table.add_note(
        "wrong answers = runs with two decision values (conflicting "
        "commit/abort).  Protocol 2's column must be zero everywhere; "
        "under bad timing it trades commits for aborts instead."
    )
    return table
