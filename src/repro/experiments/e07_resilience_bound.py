"""E7 — Theorem 14: the resilience bound ``n > 2t`` is sharp.

Claim: no t-nonblocking transaction commit protocol exists for
``n <= 2t`` (proved even for lockstep-synchronous processors with atomic
broadcast).  A simulation cannot quantify over all protocols; what it can
exhibit is the sharp threshold on *this* protocol under the proof's
kill-half adversary:

* ``n = 2t + 1``: killing ``t`` still leaves a deciding majority — the
  protocol terminates (with abort, since the survivors' GO collection
  times out);
* ``n = 2t``: killing ``t`` leaves exactly ``t`` survivors, whose
  ``n - t`` waits are satisfiable but whose "more than n/2" majority
  threshold is not — the protocol blocks forever, *without* ever
  producing a wrong answer.

Lemmas 12 and 13 (the proof's schedule machinery) are property-tested in
``tests/lowerbound/``; this table is the boundary demonstration.
"""

from __future__ import annotations

from functools import partial

from repro.analysis.tables import ResultTable
from repro.engine import run_trials
from repro.lowerbound.theorem14 import run_boundary_case


def _boundary_trial(seed: int, n: int, t: int, max_steps: int):
    """One picklable E7 trial: the kill-half schedule at one seed."""
    return run_boundary_case(n=n, t=t, seed=seed, max_steps=max_steps)


def run(
    trials: int = 5,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E7 and render its table."""
    ts = (1, 2) if quick else (1, 2, 3)
    trials = min(trials, 2) if quick else trials
    max_steps = 6_000 if quick else 15_000
    table = ResultTable(
        title=(
            "E7 (Theorem 14): kill-half adversary at the resilience "
            "boundary -- paper: impossible at n = 2t, possible above"
        ),
        columns=[
            "t",
            "n",
            "relation",
            "trials",
            "terminated",
            "conflicts",
            "decisions",
        ],
    )
    for t in ts:
        for n, relation in ((2 * t, "n = 2t"), (2 * t + 1, "n = 2t+1")):
            terminated = 0
            conflicts = 0
            decisions: set[int] = set()
            for result in run_trials(
                partial(_boundary_trial, n=n, t=t, max_steps=max_steps),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            ):
                terminated += result.terminated
                conflicts += not result.consistent
                decisions |= set(result.decided_values)
            table.add_row(
                t,
                n,
                relation,
                trials,
                f"{terminated}/{trials}",
                f"{conflicts}/{trials}",
                sorted(decisions) if decisions else "-",
            )
    table.add_note(
        "at n = 2t the run blocks (0 terminations) yet never errs "
        "(0 conflicts): graceful degradation exactly where Theorem 14 "
        "forbids success."
    )
    return table
