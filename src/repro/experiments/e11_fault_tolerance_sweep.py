"""E11 — fault tolerance: Protocol 2 works for every ``t < n/2``.

Claim: "Our protocol works as long as more than half the processors are
nonfaulty" — the optimum by Theorem 14.  Across system sizes, the
termination threshold under crashes must sit exactly at
``t = ceil(n/2) - 1`` faults: every crash count up to ``t`` terminates,
and the cliff beyond is non-termination, never inconsistency.

Workload: all-commit votes, crash counts swept through and past ``t``,
for ``n in {5, 7, 9}``.
"""

from __future__ import annotations

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_batch
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory

_K = 4


def run(
    trials: int = 20,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E11 and render its table."""
    sizes = (5,) if quick else (5, 7, 9)
    trials = min(trials, 5) if quick else trials
    max_steps = 8_000 if quick else 20_000
    table = ResultTable(
        title=(
            "E11: crash-tolerance threshold of Protocol 2 -- paper: "
            "terminates iff at most t = ceil(n/2)-1 crashes (optimal)"
        ),
        columns=[
            "n",
            "t",
            "crashes",
            "trials",
            "termination rate",
            "conflict rate",
            "expected",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for crashes in (0, t - 1, t, t + 1, t + 2):
            if crashes < 0 or crashes >= n:
                continue

            plan = tuple(
                CrashAt(pid=n - 1 - i, cycle=2 + i) for i in range(crashes)
            )
            config = CommitTrialConfig(
                votes=[1] * n,
                adversary_factory=SeededFactory.of(
                    ScheduledCrashAdversary, crash_plan=plan
                ),
                K=_K,
                max_steps=max_steps,
            )
            batch = run_commit_batch(
                config, trials=trials, base_seed=base_seed, workers=workers
            )
            table.add_row(
                n,
                t,
                crashes,
                len(batch),
                f"{batch.termination_rate:.0%}",
                f"{1 - batch.consistency_rate:.0%}",
                "terminates" if crashes <= t else "may block",
            )
    table.add_note(
        "the threshold must sit exactly at t; conflicts must be 0 on both "
        "sides of it (Theorem 11)."
    )
    return table
