"""E6 — Theorem 11: graceful degradation beyond ``t`` faults.

Claim: "If more than t processors fail during a run of Protocol 2, no
two nonfaulty processors will make conflicting decisions" — the protocol
may fail to terminate, but it never produces a wrong answer.  This is
the property the paper contrasts with [S]/[DS], which tolerate any
number of faults but err under timing violations.

Workload: all-commit votes with the crash count swept from 0 to ``n-1``
(well past the budget), killing processors one per cycle from cycle 2,
with and without partial (mid-broadcast) delivery of the victims' final
envelopes.  The two reported rates: conflicts (must be 0 everywhere) and
termination (must be 100% for ``c <= t``; allowed to drop beyond).
"""

from __future__ import annotations

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_batch
from repro.analysis.tables import ResultTable
from repro.engine import SeededFactory

_K = 4


def run(
    trials: int = 30,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E6 and render its table."""
    n = 5
    t = (n - 1) // 2
    trials = min(trials, 8) if quick else trials
    crash_counts = (0, t, t + 1, n - 1) if quick else tuple(range(n))
    max_steps = 8_000 if quick else 20_000
    table = ResultTable(
        title=(
            "E6 (Theorem 11): graceful degradation of Protocol 2 beyond "
            "t faults -- paper: never a conflict, only non-termination"
        ),
        columns=[
            "n",
            "t",
            "crashes",
            "within budget",
            "trials",
            "conflict rate",
            "termination rate",
        ],
    )
    for crashes in crash_counts:
        plan = tuple(
            CrashAt(pid=n - 1 - i, cycle=2 + i) for i in range(crashes)
        )
        config = CommitTrialConfig(
            votes=[1] * n,
            adversary_factory=SeededFactory.of(
                ScheduledCrashAdversary,
                crash_plan=plan,
                partial_broadcast_victims=frozenset(range(0, n, 2)),
            ),
            K=_K,
            max_steps=max_steps,
        )
        batch = run_commit_batch(
            config, trials=trials, base_seed=base_seed, workers=workers
        )
        table.add_row(
            n,
            t,
            crashes,
            "yes" if crashes <= t else "NO",
            len(batch),
            f"{1 - batch.consistency_rate:.0%}",
            f"{batch.termination_rate:.0%}",
        )
    table.add_note(
        "conflict rate counts runs with two decision values; Theorem 11 "
        "requires it to be 0 even when the fault budget is exceeded."
    )
    table.add_note(
        "non-terminating runs are truncated at the step horizon; their "
        "processors remain undecided, never inconsistent."
    )
    return table
