"""E14 (ablation) — what nonblocking commitment costs in messages.

The paper's comparison with [S]/[DS] is about *robustness* (they err or
block; Protocol 2 never errs), but the flip side — price — is the theme
of the cited Dwork–Skeen paper ("The Inherent Cost of Nonblocking
Commitment").  This ablation measures it on our substrate: envelopes and
steps per decided transaction for centralized 2PC (O(n) messages), 3PC
(O(n), one more round trip), and Protocol 2 (O(n^2) per stage — every
participant broadcasts), across system sizes, on the same failure-free
on-time schedule.

Expected shape: 2PC cheapest, 3PC ~1.5x 2PC, Protocol 2 quadratic — the
robustness of randomized nonblocking commit is bought with message
complexity, which is exactly why the paper's protocol aims its claims at
fault tolerance and expected rounds rather than message counts.
"""

from __future__ import annotations

from functools import partial

from repro.adversary.standard import SynchronousAdversary
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.core.commit import CommitProgram
from repro.experiments.common import run_programs
from repro.protocols.decentralized import DecentralizedCommitProgram
from repro.protocols.threepc import ThreePCProgram
from repro.protocols.twopc import TwoPCProgram

_K = 4


def _build(protocol: str, n: int):
    t = (n - 1) // 2
    if protocol == "2PC":
        return [TwoPCProgram(pid=p, n=n, initial_vote=1, K=_K) for p in range(n)]
    if protocol == "3PC":
        return [
            ThreePCProgram(pid=p, n=n, initial_vote=1, K=_K) for p in range(n)
        ]
    if protocol == "decentralized 1PC":
        return [
            DecentralizedCommitProgram(pid=p, n=n, initial_vote=1, K=_K)
            for p in range(n)
        ]
    if protocol == "Protocol 2":
        return [
            CommitProgram(pid=p, n=n, t=t, initial_vote=1, K=_K)
            for p in range(n)
        ]
    raise ValueError(f"unknown protocol {protocol!r}")


PROTOCOLS = ("2PC", "3PC", "decentralized 1PC", "Protocol 2")


def _cost_trial(seed: int, protocol: str, n: int):
    """One picklable E14 trial: one protocol at one size and seed."""
    _, metrics = run_programs(
        _build(protocol, n),
        SynchronousAdversary(seed=seed),
        K=_K,
        t=(n - 1) // 2,
        seed=seed,
        max_steps=100_000,
    )
    return metrics


def run(
    trials: int = 10,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E14 and render its table."""
    sizes = (5, 9) if quick else (5, 9, 17, 33)
    trials = min(trials, 3) if quick else trials
    table = ResultTable(
        title=(
            "E14 (ablation): message cost of commitment, failure-free "
            "on-time runs -- 2PC/3PC O(n); decentralized 1PC and "
            "Protocol 2 O(n^2)"
        ),
        columns=[
            "protocol",
            "n",
            "trials",
            "mean envelopes",
            "envelopes / n",
            "mean events",
            "committed",
        ],
    )
    for protocol in PROTOCOLS:
        for n in sizes:
            batch = run_custom_batch(
                partial(_cost_trial, protocol=protocol, n=n),
                trials=trials,
                base_seed=base_seed,
                workers=workers,
            )
            envelopes = batch.summary("messages")
            events = batch.summary("events")
            table.add_row(
                protocol,
                n,
                len(batch),
                envelopes.mean,
                envelopes.mean / n,
                events.mean,
                f"{batch.commit_rate:.0%}",
            )
    table.add_note(
        "envelopes = point-to-point messages on the wire (one broadcast "
        "= n - 1 envelopes); robustness is bought with the quadratic "
        "column — the trade the Dwork-Skeen citation is about."
    )
    return table
