"""E5 — Remark 3: the shared coin list is the engine of fast termination.

Claim: the shared coin list is what lowers Ben-Or's exponential expected
time to a constant, and longer lists push the expected stage count from
(just under) 4 toward 3 — "by having the coordinator flip more than n
coins, the expected value in Lemma 8 can get arbitrarily close to 3".

Workload: standalone agreement with split inputs against the strongest
attacker we have — the content-reading balancer (itself outside the
paper's model, so this is an *over*-adversarial ablation).  We sweep the
coin-list length ``m``: at ``m = 0`` the protocol *is* Ben-Or and stages
blow up; any ``m >= 1`` restores constant stages because the first
balanced stage lands everyone on the same shared coin.  The private-coin
fallback beyond the list is also exercised (``m`` between 1 and the
stage count reached).
"""

from __future__ import annotations

from functools import partial

from repro.adversary.omniscient import OmniscientBalancer
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.core.api import shared_coins
from repro.engine import seeds as seed_scheme
from repro.experiments.common import agreement_trial, alternating_values


def _ablation_trial(seed: int, n: int, t: int, m: int, max_steps: int):
    """One picklable E5 trial at coin-list length ``m``."""
    adversary = OmniscientBalancer(n=n, t=t, seed=seed)
    _, metrics = agreement_trial(
        n=n,
        t=t,
        values=alternating_values(n),
        adversary=adversary,
        seed=seed,
        coins=shared_coins(
            m, seed=seed_scheme.derive(seed, seed_scheme.ABLATION_COIN_STREAM)
        ),
        max_steps=max_steps,
    )
    return metrics


def run(
    trials: int = 25,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E5 and render its table."""
    n = 6
    t = (n - 1) // 2
    lengths = (0, 1, n) if quick else (0, 1, n // 2, n, 4 * n)
    trials = min(trials, 8) if quick else trials
    max_steps = 60_000 if quick else 250_000
    table = ResultTable(
        title=(
            "E5 (Remark 3): agreement stages vs shared-coin-list length, "
            "content-reading balancer, split inputs"
        ),
        columns=[
            "n",
            "|coins|",
            "trials",
            "mean stages",
            "max stages",
            "shared-coin stages",
            "private-coin stages",
            "terminated",
        ],
    )
    for m in lengths:
        batch = run_custom_batch(
            partial(_ablation_trial, n=n, t=t, m=m, max_steps=max_steps),
            trials=trials,
            base_seed=base_seed,
            workers=workers,
        )
        stages = batch.summary("stages")
        shared_used = batch.summary("shared_coin_stages")
        private_used = batch.summary("private_coin_stages")
        table.add_row(
            n,
            m,
            len(batch),
            stages.mean,
            int(stages.maximum),
            shared_used.mean,
            private_used.mean,
            f"{batch.termination_rate:.0%}",
        )
    table.add_note(
        "m = 0 degenerates to Ben-Or (local coins only): stages explode "
        "under the balancer; any m >= 1 restores constant stages."
    )
    return table
