"""E10 — shared coins turn Ben-Or's exponential time into a constant.

Claim (introduction and Section 3): Ben-Or's asynchronous agreement
takes exponential expected time against an adversary, and the paper's
modification — identical coin flips distributed to all processors —
lowers it to a small constant while tolerating the optimal ``t < n/2``.

Workload: standalone agreement, split inputs, sweeping ``n``, under two
adversaries: the content-reading balancer (the classic anti-Ben-Or
attack, deliberately stronger than the paper's pattern-only model) and
the pattern-only camp splitter.  Reported metric: stages until the last
nonfaulty decision.  The shape to reproduce: Ben-Or's stages grow
~2^(n-1) under the balancer while Protocol 1 stays flat — and Protocol 1
stays flat even against the balancer, because a balanced stage makes
every processor adopt the *same* shared coin.
"""

from __future__ import annotations

from functools import partial

from repro.adversary.omniscient import OmniscientBalancer
from repro.adversary.splitter import SplitVoteAdversary
from repro.analysis.montecarlo import run_custom_batch
from repro.analysis.tables import ResultTable
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.engine import seeds as seed_scheme
from repro.experiments.common import alternating_values, run_programs
from repro.protocols.benor import BenOrProgram

_K = 4


def _build(n: int, t: int, shared: bool, seed: int):
    values = alternating_values(n)
    if shared:
        coins = shared_coins(
            n, seed=seed_scheme.derive(seed, seed_scheme.BENOR_COIN_STREAM)
        )
        return [
            AgreementProgram(
                pid=p, n=n, t=t, initial_value=values[p], coins=coins
            )
            for p in range(n)
        ]
    return [
        BenOrProgram(pid=p, n=n, t=t, initial_value=values[p])
        for p in range(n)
    ]


def _make_adversary(name: str, n: int, t: int, seed: int):
    if name == "balancer (content-aware)":
        return OmniscientBalancer(n=n, t=t, seed=seed)
    if name == "splitter (pattern-only)":
        return SplitVoteAdversary(n=n, seed=seed)
    raise ValueError(f"unknown adversary {name!r}")


def _comparison_trial(
    seed: int, n: int, t: int, shared: bool, adversary: str, max_steps: int
):
    """One picklable E10 trial: one protocol, one adversary, one seed."""
    _, metrics = run_programs(
        _build(n, t, shared, seed),
        _make_adversary(adversary, n, t, seed),
        K=_K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    return metrics


def run(
    trials: int = 15,
    base_seed: int = 0,
    quick: bool = False,
    workers: int | None = None,
) -> ResultTable:
    """Run E10 and render its table."""
    sizes = (4, 6) if quick else (4, 6, 8)
    trials = min(trials, 5) if quick else trials
    max_steps = 60_000 if quick else 300_000
    adversary_names = ("balancer (content-aware)", "splitter (pattern-only)")
    table = ResultTable(
        title=(
            "E10: Ben-Or (local coins) vs Protocol 1 (shared coins) -- "
            "paper: exponential vs constant expected stages"
        ),
        columns=[
            "n",
            "adversary",
            "protocol",
            "trials",
            "mean stages",
            "max stages",
            "terminated",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for adversary_name in adversary_names:
            for protocol_name, shared in (
                ("Ben-Or", False),
                ("Protocol 1", True),
            ):
                batch = run_custom_batch(
                    partial(
                        _comparison_trial,
                        n=n,
                        t=t,
                        shared=shared,
                        adversary=adversary_name,
                        max_steps=max_steps,
                    ),
                    trials=trials,
                    base_seed=base_seed,
                    workers=workers,
                )
                stages = batch.summary("stages")
                table.add_row(
                    n,
                    adversary_name,
                    protocol_name,
                    len(batch),
                    stages.mean,
                    int(stages.maximum),
                    f"{batch.termination_rate:.0%}",
                )
    table.add_note(
        "the balancer reads message contents (outside the paper's model) "
        "— the strongest classic attack on Ben-Or; the paper's pattern-"
        "only adversary is strictly weaker.  Protocol 1 is flat under "
        "both; expect ~2^(n-1) growth for Ben-Or under the balancer."
    )
    return table
