"""E10 — shared coins turn Ben-Or's exponential time into a constant.

Claim (introduction and Section 3): Ben-Or's asynchronous agreement
takes exponential expected time against an adversary, and the paper's
modification — identical coin flips distributed to all processors —
lowers it to a small constant while tolerating the optimal ``t < n/2``.

Workload: standalone agreement, split inputs, sweeping ``n``, under two
adversaries: the content-reading balancer (the classic anti-Ben-Or
attack, deliberately stronger than the paper's pattern-only model) and
the pattern-only camp splitter.  Reported metric: stages until the last
nonfaulty decision.  The shape to reproduce: Ben-Or's stages grow
~2^(n-1) under the balancer while Protocol 1 stays flat — and Protocol 1
stays flat even against the balancer, because a balanced stage makes
every processor adopt the *same* shared coin.
"""

from __future__ import annotations

from repro.adversary.omniscient import OmniscientBalancer
from repro.adversary.splitter import SplitVoteAdversary
from repro.analysis.montecarlo import TrialBatch
from repro.analysis.tables import ResultTable
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.experiments.common import alternating_values, run_programs
from repro.protocols.benor import BenOrProgram

_K = 4


def _build(n: int, t: int, shared: bool, seed: int):
    values = alternating_values(n)
    if shared:
        coins = shared_coins(n, seed=seed + 7_654_321)
        return [
            AgreementProgram(
                pid=p, n=n, t=t, initial_value=values[p], coins=coins
            )
            for p in range(n)
        ]
    return [
        BenOrProgram(pid=p, n=n, t=t, initial_value=values[p])
        for p in range(n)
    ]


def run(
    trials: int = 15, base_seed: int = 0, quick: bool = False
) -> ResultTable:
    """Run E10 and render its table."""
    sizes = (4, 6) if quick else (4, 6, 8)
    trials = min(trials, 5) if quick else trials
    max_steps = 60_000 if quick else 300_000
    adversaries = {
        "balancer (content-aware)": lambda n, t, seed: OmniscientBalancer(
            n=n, t=t, seed=seed
        ),
        "splitter (pattern-only)": lambda n, t, seed: SplitVoteAdversary(
            n=n, seed=seed
        ),
    }
    table = ResultTable(
        title=(
            "E10: Ben-Or (local coins) vs Protocol 1 (shared coins) -- "
            "paper: exponential vs constant expected stages"
        ),
        columns=[
            "n",
            "adversary",
            "protocol",
            "trials",
            "mean stages",
            "max stages",
            "terminated",
        ],
    )
    for n in sizes:
        t = (n - 1) // 2
        for adversary_name, adversary_factory in adversaries.items():
            for protocol_name, shared in (
                ("Ben-Or", False),
                ("Protocol 1", True),
            ):
                batch = TrialBatch()
                for i in range(trials):
                    seed = base_seed + i
                    _, metrics = run_programs(
                        _build(n, t, shared, seed),
                        adversary_factory(n, t, seed),
                        K=_K,
                        t=t,
                        seed=seed,
                        max_steps=max_steps,
                    )
                    batch.add(metrics)
                stages = batch.summary("stages")
                table.add_row(
                    n,
                    adversary_name,
                    protocol_name,
                    len(batch),
                    stages.mean,
                    int(stages.maximum),
                    f"{batch.termination_rate:.0%}",
                )
    table.add_note(
        "the balancer reads message contents (outside the paper's model) "
        "— the strongest classic attack on Ben-Or; the paper's pattern-"
        "only adversary is strictly weaker.  Protocol 1 is flat under "
        "both; expect ~2^(n-1) growth for Ben-Or under the balancer."
    )
    return table
