#!/usr/bin/env python3
"""Certify runs against the paper's conditions, then look inside one.

Three tools on display:

1. the **verification battery** (`repro.analysis.verify`) — every paper
   condition (agreement, both validities, decision permanence, the 8K
   budget) checked mechanically on recorded runs, here over a fuzzing
   adversary that mixes delays, partitions, and crashes;
2. the **bivalence witness** (`repro.lowerbound.valency`) — two runs
   with *identical* coins and initial state where timing alone flips the
   decision (the engine behind the paper's Theorem 17);
3. the **run inspector** (`repro.inspect`) — a timeline and round chart
   of a single interesting run.

Run:  python examples/certify_and_inspect.py
"""

from repro import run_commit
from repro.adversary import ChaosAdversary
from repro.analysis import histogram, verify_commit_run
from repro.inspect import render_round_chart, render_timeline, summarize_run
from repro.lowerbound import bivalence_witness

N = 5
TRIALS = 25


def main() -> None:
    # --- 1. Fuzz and certify. -------------------------------------------------
    print(f"fuzzing {TRIALS} chaotic runs and certifying each one ...")
    violations = 0
    rounds_seen = []
    for seed in range(TRIALS):
        votes = [1, 1, seed % 2, 1, 1]
        adversary = ChaosAdversary(n=N, max_crashes=2, seed=seed)
        outcome = run_commit(
            votes, K=4, adversary=adversary, seed=seed, max_steps=25_000
        )
        report = verify_commit_run(outcome.run, votes)
        if not report.ok:
            violations += 1
            print(f"  seed {seed}: VIOLATION")
            print(report.render())
        if outcome.terminated and outcome.decision_round is not None:
            rounds_seen.append(outcome.decision_round)
    print(f"violations: {violations}/{TRIALS}")
    assert violations == 0
    print()
    print("distribution of decision rounds across the fuzzed runs:")
    print(histogram(rounds_seen, bins=5, width=30))
    print()

    # --- 2. The bivalence witness. ---------------------------------------------
    witness = bivalence_witness(n=N, K=4, tape_seed=7)
    assert witness.is_bivalent
    print("bivalence witness (same coins, same votes, same processors):")
    print(
        f"  on-time schedule  -> {witness.fast.unanimous_decision.name} "
        f"in {witness.fast.decision_ticks} ticks"
    )
    print(
        f"  delayed schedule  -> {witness.slow.unanimous_decision.name} "
        f"in {witness.slow.decision_ticks} ticks"
    )
    print("  timing alone separated the two outcomes (Lemma 15 / Thm 17).")
    print()

    # --- 3. Inspect one run. -----------------------------------------------------
    outcome = run_commit([1] * N, K=4, seed=3)
    certification = verify_commit_run(outcome.run, [1] * N)
    print("one clean run, certified and inspected:")
    print(certification.render())
    print()
    print(summarize_run(outcome.run))
    print()
    print(render_timeline(outcome.run, limit=12))
    print()
    print(render_round_chart(outcome.run))


if __name__ == "__main__":
    main()
