#!/usr/bin/env python3
"""Why the paper measures asynchronous rounds, not clock ticks.

Theorem 17: no protocol in this model terminates in a bounded expected
number of clock ticks — an adversary simply slows every delivery down.
The paper's answer is the *asynchronous round*, whose end is defined
relative to the receipt of the previous round's messages, so it stretches
with the delay.  This example sweeps a uniform delivery delay D and
prints both series side by side: ticks explode, rounds do not.

It also demonstrates Theorem 14's sharp resilience threshold while it is
at it: kill t of n = 2t processors and the protocol blocks (gracefully);
kill t of n = 2t + 1 and it still decides.

Run:  python examples/rounds_vs_ticks.py
"""

from repro.analysis.tables import ResultTable
from repro.lowerbound import demonstrate_boundary, measure_delay_scaling


def main() -> None:
    table = ResultTable(
        title="decision time vs adversary delay D (n=5, K=4, all-commit)",
        columns=["delay D", "clock ticks", "async rounds", "on time"],
    )
    points = measure_delay_scaling(n=5, delays=(1, 2, 4, 8, 16, 32, 64))
    for point in points:
        table.add_row(
            point.delay_cycles,
            point.decision_ticks,
            point.decision_rounds,
            "yes" if point.on_time else "no",
        )
    print(table.render())
    ticks = [p.decision_ticks for p in points]
    rounds = [p.decision_rounds for p in points]
    assert ticks[-1] > 8 * ticks[0], "ticks should grow without bound"
    assert max(rounds) <= 14, "rounds should stay within Theorem 10's budget"
    print()
    print(
        f"ticks grew {ticks[-1] / ticks[0]:.0f}x while rounds stayed "
        f"within {max(rounds)} — the round measure absorbs the delay."
    )

    print()
    print("Theorem 14's sharp threshold (kill t processors):")
    at_bound, above_bound = demonstrate_boundary(t=2, max_steps=15_000)
    print(
        f"  n = 2t     ({at_bound.n} procs): terminated={at_bound.terminated}, "
        f"consistent={at_bound.consistent}  (blocks, gracefully)"
    )
    print(
        f"  n = 2t + 1 ({above_bound.n} procs): terminated="
        f"{above_bound.terminated}, decisions={set(above_bound.decided_values)}"
    )
    assert not at_bound.terminated and at_bound.consistent
    assert above_bound.terminated


if __name__ == "__main__":
    main()
