#!/usr/bin/env python3
"""Run the commit protocol through a gauntlet of adversaries.

The paper's model lets the adversary pick step order, delivery timing,
and crashes — everything except message contents and coin flips.  This
example throws every adversary in the library at Protocol 2 and tabulates
what each one can and cannot do to it:

* well-behaved schedules must commit (commit validity);
* anything worse may cost the commit, but never consistency;
* more than t crashes may cost termination, but never consistency.

Run:  python examples/adversarial_gauntlet.py
"""

from repro import run_commit
from repro.adversary import (
    AdaptiveCrashAdversary,
    CrashAt,
    LateMessageAdversary,
    OnTimeAdversary,
    PartitionAdversary,
    RandomAdversary,
    ScheduledCrashAdversary,
    SynchronousAdversary,
)
from repro.analysis.tables import ResultTable

N = 5
K = 4
TRIALS = 10


def gauntlet():
    return {
        "synchronous (well-behaved)": lambda seed: SynchronousAdversary(
            seed=seed
        ),
        "on-time jitter": lambda seed: OnTimeAdversary(K=K, seed=seed),
        "late messages (10%)": lambda seed: LateMessageAdversary(
            K=K, seed=seed, late_probability=0.1
        ),
        "late messages (50%)": lambda seed: LateMessageAdversary(
            K=K, seed=seed, late_probability=0.5
        ),
        "random fair scheduler": lambda seed: RandomAdversary(seed=seed),
        "2 scheduled crashes (= t)": lambda seed: ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=3, cycle=2), CrashAt(pid=4, cycle=4)],
            seed=seed,
        ),
        "coordinator killed mid-fanout": lambda seed: AdaptiveCrashAdversary(
            victims=[0], kill_after_sends=1, suppress_to={1, 2}, seed=seed
        ),
        "partition, heals late": lambda seed: PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=30, seed=seed
        ),
        "3 crashes (> t)": lambda seed: ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=p, cycle=2) for p in (2, 3, 4)],
            seed=seed,
        ),
    }


def main() -> None:
    table = ResultTable(
        title=f"Protocol 2 vs the adversary gauntlet (n={N}, t=2, "
        f"{TRIALS} trials each, all-commit votes)",
        columns=[
            "adversary",
            "terminated",
            "commits",
            "aborts",
            "conflicts",
        ],
    )
    for name, factory in gauntlet().items():
        terminated = commits = aborts = conflicts = 0
        for seed in range(TRIALS):
            outcome = run_commit(
                [1] * N,
                K=K,
                adversary=factory(seed),
                seed=seed,
                max_steps=6_000,
            )
            terminated += outcome.terminated
            if not outcome.consistent:
                conflicts += 1
            decision = outcome.unanimous_decision
            if decision is not None:
                commits += decision.name == "COMMIT"
                aborts += decision.name == "ABORT"
        table.add_row(
            name,
            f"{terminated}/{TRIALS}",
            commits,
            aborts,
            conflicts,
        )
    print(table.render())
    conflict_column = table.columns.index("conflicts")
    assert all(row[conflict_column] == 0 for row in table.rows)
    print()
    print("no adversary produced a conflicting decision — the protocol is")
    print("safe under every timing and crash pattern it was thrown.")


if __name__ == "__main__":
    main()
