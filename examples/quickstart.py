#!/usr/bin/env python3
"""Quickstart: commit a transaction with the randomized commit protocol.

Runs Protocol 2 (Coan & Lundelius, PODC 1986) over five simulated
processors three times:

1. everyone wants to commit, the network behaves -> COMMIT;
2. one processor wants to abort -> ABORT (abort validity, any timing);
3. everyone wants to commit but messages run late -> a safe ABORT
   (never a wrong answer -- the whole point of the protocol).

Run:  python examples/quickstart.py
"""

from repro import Vote, run_commit
from repro.adversary import LateMessageAdversary


def show(title, outcome):
    print(f"--- {title}")
    print(f"  decision     : {outcome.unanimous_decision.name}")
    print(f"  rounds       : {outcome.decision_round} asynchronous rounds")
    print(f"  clock ticks  : {outcome.decision_ticks}")
    print(f"  on time      : {outcome.on_time}")
    print(f"  consistent   : {outcome.consistent}")
    print()


def main() -> None:
    n = 5

    # 1. The happy path: all-commit votes, failure-free, on time.
    outcome = run_commit([Vote.COMMIT] * n, K=4, seed=1)
    assert outcome.unanimous_decision.name == "COMMIT"
    show("all want to commit, network behaves", outcome)

    # 2. One participant says no: the decision must be abort, no matter
    #    what the network does (abort validity).
    votes = [Vote.COMMIT] * n
    votes[3] = Vote.ABORT
    outcome = run_commit(votes, K=4, seed=2)
    assert outcome.unanimous_decision.name == "ABORT"
    show("processor 3 votes abort", outcome)

    # 3. Late messages: the synchronous-model protocols of the 1980s
    #    could return a *wrong* answer here; Protocol 2 simply aborts.
    adversary = LateMessageAdversary(K=4, seed=3, late_probability=0.4)
    outcome = run_commit([Vote.COMMIT] * n, K=4, adversary=adversary)
    assert outcome.consistent
    show("all want to commit, but messages run late", outcome)

    print("every run decided consistently; late messages only cost a commit.")


if __name__ == "__main__":
    main()
