#!/usr/bin/env python3
"""A distributed bank transfer on the asyncio runtime.

The scenario the paper's introduction motivates: one transaction touches
several database shards concurrently, and all of them must install it or
none may.  Here a transfer debits shard A and credits shard B while an
audit shard logs it; the three shards plus two replicas run Protocol 2
over the asyncio transport (real concurrency, jittery delays), once
cleanly and once with a replica crashing mid-protocol.

Run:  python examples/bank_transfer.py
"""

from dataclasses import dataclass, field

from repro import Vote
from repro.runtime import CrashInjection, UniformDelay, run_commit_cluster


@dataclass
class Shard:
    """A toy database shard with staged (pending) writes."""

    name: str
    balances: dict[str, int] = field(default_factory=dict)
    staged: dict[str, int] = field(default_factory=dict)

    def stage(self, account: str, delta: int) -> Vote:
        """Stage a write; vote abort if it would overdraw."""
        balance = self.balances.get(account, 0)
        if balance + delta < 0:
            return Vote.ABORT
        self.staged[account] = delta
        return Vote.COMMIT

    def finish(self, commit: bool) -> None:
        """Install or discard the staged writes."""
        if commit:
            for account, delta in self.staged.items():
                self.balances[account] = self.balances.get(account, 0) + delta
        self.staged.clear()


def transfer(shards, votes, crashes=(), seed=0):
    """Run the commit protocol for one staged transfer."""
    result = run_commit_cluster(
        votes,
        K=8,
        delay_model=UniformDelay(low=0.0005, high=0.003),
        crashes=crashes,
        seed=seed,
        deadline=15.0,
    )
    decision = result.unanimous_decision
    assert result.consistent, "conflicting decisions would corrupt the bank!"
    for shard in shards:
        shard.finish(commit=(decision is not None and decision.name == "COMMIT"))
    return result


def main() -> None:
    shard_a = Shard("accounts-a", balances={"alice": 100})
    shard_b = Shard("accounts-b", balances={"bob": 10})
    audit = Shard("audit-log")
    replicas = [Shard("replica-1"), Shard("replica-2")]
    shards = [shard_a, shard_b, audit, *replicas]

    # --- Transfer 1: alice -> bob, 60 units.  Everyone can stage it.
    votes = [
        shard_a.stage("alice", -60),
        shard_b.stage("bob", +60),
        audit.stage("log", 0),
        Vote.COMMIT,  # replicas always follow
        Vote.COMMIT,
    ]
    result = transfer(shards, votes, seed=1)
    print(f"transfer 1 decided {result.unanimous_decision.name}")
    print(f"  alice={shard_a.balances['alice']}  bob={shard_b.balances['bob']}")
    assert shard_a.balances["alice"] == 40
    assert shard_b.balances["bob"] == 70

    # --- Transfer 2: alice -> bob, 500 units.  Shard A must refuse: the
    # unilateral-abort right every participant keeps.
    votes = [
        shard_a.stage("alice", -500),
        shard_b.stage("bob", +500),
        audit.stage("log", 0),
        Vote.COMMIT,
        Vote.COMMIT,
    ]
    result = transfer(shards, votes, seed=2)
    print(f"transfer 2 decided {result.unanimous_decision.name} (overdraft)")
    assert shard_a.balances["alice"] == 40  # unchanged

    # --- Transfer 3: a replica crashes mid-protocol.  t = 2 of n = 5 may
    # fail; the survivors still decide, consistently.
    votes = [
        shard_a.stage("alice", -15),
        shard_b.stage("bob", +15),
        audit.stage("log", 0),
        Vote.COMMIT,
        Vote.COMMIT,
    ]
    result = transfer(
        shards,
        votes,
        crashes=[CrashInjection(pid=4, after_seconds=0.004)],
        seed=3,
    )
    survivors = [r for r in result.nodes if r.pid != 4]
    print(
        f"transfer 3 decided {result.unanimous_decision.name} "
        f"with replica-2 crashed"
    )
    assert all(r.decision is not None for r in survivors)
    print(f"  alice={shard_a.balances['alice']}  bob={shard_b.balances['bob']}")
    print("ledger consistent across all shards.")


if __name__ == "__main__":
    main()
