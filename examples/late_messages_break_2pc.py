#!/usr/bin/env python3
"""Reproduce the paper's motivating failure: late messages break 2PC.

"The main difficulty in using these protocols in real systems is that a
single violation of the timing assumptions (i.e., a late message) can
cause the protocol to produce the wrong answer."  — Section 1

Scenario: all five participants vote commit.  The coordinator decides
COMMIT and fans the decision out — but it crashes mid-fan-out (or the
fan-out runs late).  A 2PC participant whose decision-wait times out must
do *something*:

* presume abort  -> it aborts while the coordinator committed: a wrong
  answer (the coordinator may have externalized the commit);
* block         -> safe, but the system hangs until manual repair.

Protocol 2 under the exact same faults neither errs nor hangs: it aborts
safely, in bounded expected rounds.

Run:  python examples/late_messages_break_2pc.py
"""

from repro.adversary import AdaptiveCrashAdversary, LateMessageAdversary
from repro.core.commit import CommitProgram
from repro.protocols import ThreePCProgram, TimeoutAction, TwoPCProgram
from repro.sim.scheduler import Simulation

N = 5
K = 4


def run(programs, adversary, max_steps=8_000):
    simulation = Simulation(
        programs, adversary, K=K, t=(N - 1) // 2, max_steps=max_steps
    )
    result = simulation.run()
    run_record = result.run
    decisions = sorted(
        (pid, d) for pid, d in result.decisions().items()
    )
    return result, decisions, run_record.agreement_holds()


def crash_mid_fanout(seed=0):
    """Kill the coordinator right after its decision fan-out starts."""
    return AdaptiveCrashAdversary(
        victims=[0],
        kill_after_sends=2,
        suppress_to=set(range(1, N)),
        seed=seed,
    )


def late_fanout(seed=0):
    """Make the coordinator's messages late rather than lost."""
    return LateMessageAdversary(
        K=K,
        seed=seed,
        late_probability=0.9,
        lateness_factor=4,
        target_senders={0},
    )


def banner(text):
    print()
    print(f"=== {text}")


def main() -> None:
    label = {0: "ABORT", 1: "COMMIT", None: "undecided"}

    banner("2PC (presume-abort timeouts), coordinator crashes mid-fan-out")
    programs = [TwoPCProgram(pid=p, n=N, initial_vote=1, K=K) for p in range(N)]
    result, decisions, consistent = run(programs, crash_mid_fanout())
    for pid, decision in decisions:
        role = "coordinator" if pid == 0 else f"participant {pid}"
        print(f"  {role:>14}: {label[decision]}")
    print(f"  consistent: {consistent}")
    assert not consistent, "expected the classic 2PC wrong answer"
    print("  -> the coordinator committed; everyone else presumed abort.")

    banner("2PC (blocking timeouts), same faults")
    programs = [
        TwoPCProgram(
            pid=p, n=N, initial_vote=1, K=K,
            timeout_action=TimeoutAction.BLOCK,
        )
        for p in range(N)
    ]
    result, decisions, consistent = run(programs, crash_mid_fanout())
    undecided = [pid for pid, d in decisions if d is None]
    print(f"  consistent: {consistent}, blocked participants: {undecided}")
    assert consistent and undecided
    print("  -> safe, but the system hangs: 2PC's blocking problem.")

    banner("3PC, coordinator's fan-out runs late (not lost)")
    wrong = 0
    for seed in range(60):
        programs = [
            ThreePCProgram(pid=p, n=N, initial_vote=1, K=K) for p in range(N)
        ]
        _, _, consistent = run(
            programs,
            LateMessageAdversary(
                K=K,
                seed=seed,
                late_probability=0.4,
                lateness_factor=4,
                target_senders={0},
            ),
        )
        wrong += not consistent
    print(f"  conflicting runs: {wrong}/60")
    assert wrong > 0
    print("  -> 3PC's timeout transitions also err once messages are late.")

    banner("Protocol 2 (this paper), the same fault battery")
    for name, adversary in [
        ("coordinator crash mid-fan-out", crash_mid_fanout()),
        ("late fan-out", late_fanout()),
    ]:
        programs = [
            CommitProgram(pid=p, n=N, t=2, initial_vote=1, K=K)
            for p in range(N)
        ]
        result, decisions, consistent = run(programs, adversary)
        decided = sorted({d for _, d in decisions if d is not None})
        print(
            f"  {name:<30} consistent={consistent} "
            f"decisions={[label[d] for d in decided]}"
        )
        assert consistent
    print("  -> never a wrong answer; bad timing only costs the commit.")


if __name__ == "__main__":
    main()
