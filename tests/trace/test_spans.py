"""Unit tests for the span recorder (repro.trace.spans)."""

import pytest

from repro.errors import ConfigurationError
from repro.trace.spans import (
    SpanRecorder,
    active_recorder,
    disable_tracing,
    enable_tracing,
    tracing_enabled,
    use_recorder,
)


class TestSpans:
    def test_ids_dense_from_one(self):
        rec = SpanRecorder()
        ids = [
            rec.begin_span(f"s{i}", kind="k", track="t", start=i)
            for i in range(4)
        ]
        assert ids == [1, 2, 3, 4]

    def test_parent_defaults_to_innermost_open_span(self):
        rec = SpanRecorder()
        outer = rec.begin_span("outer", kind="k", track="t", start=0)
        inner = rec.begin_span("inner", kind="k", track="t", start=1)
        assert rec.spans[outer].parent is None
        assert rec.spans[inner].parent == outer

    def test_explicit_parent_does_not_consult_stack(self):
        rec = SpanRecorder()
        rec.begin_span("open", kind="k", track="t", start=0)
        orphan = rec.begin_span(
            "orphan", kind="k", track="t", start=1, parent=None
        )
        assert rec.spans[orphan].parent is None

    def test_end_span_pops_stack_and_sets_end(self):
        rec = SpanRecorder()
        outer = rec.begin_span("outer", kind="k", track="t", start=0)
        inner = rec.begin_span("inner", kind="k", track="t", start=1)
        rec.end_span(inner, 5, extra="x")
        assert rec.spans[inner].end == 5
        assert rec.spans[inner].attrs["extra"] == "x"
        assert rec.spans[inner].duration == 4
        # Outer is the innermost open span again.
        child = rec.begin_span("child", kind="k", track="t", start=2)
        assert rec.spans[child].parent == outer

    def test_end_span_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            SpanRecorder().end_span(99, 1.0)

    def test_span_context_manager_closes(self):
        rec = SpanRecorder()
        with rec.span("s", kind="k", track="t", start=3, end=7) as span_id:
            pass
        assert rec.spans[span_id].end == 7

    def test_open_span_has_no_duration(self):
        rec = SpanRecorder()
        span_id = rec.begin_span("s", kind="k", track="t", start=0)
        assert rec.spans[span_id].duration is None


class TestEvents:
    def test_point_attaches_to_innermost_open_span(self):
        rec = SpanRecorder()
        span_id = rec.begin_span("s", kind="k", track="t", start=0)
        event_id = rec.point("decide", track="t", time=1, pid=2)
        event = rec.events[0]
        assert event.id == event_id
        assert event.span == span_id
        assert event.attrs["pid"] == 2

    def test_send_then_deliver_emits_edge(self):
        rec = SpanRecorder()
        src = rec.send(track="t", key=7, time=0)
        dst = rec.deliver(track="t", key=7, time=1)
        assert len(rec.edges) == 1
        edge = rec.edges[0]
        assert (edge.src, edge.dst, edge.kind) == (src, dst, "message")
        assert edge.src < edge.dst

    def test_unmatched_deliver_records_no_edge(self):
        rec = SpanRecorder()
        rec.deliver(track="t", key=1, time=0)
        assert rec.edges == []
        assert len(rec.events) == 1

    def test_keys_are_namespaced_by_track(self):
        rec = SpanRecorder()
        rec.send(track="a", key=1, time=0)
        rec.deliver(track="b", key=1, time=1)
        assert rec.edges == []

    def test_scopes_keep_trial_keys_apart(self):
        # Message ids restart per run; a scope in the key prevents a
        # deliver in trial 2 from linking to trial 1's send.
        rec = SpanRecorder()
        scope_a, scope_b = rec.new_scope(), rec.new_scope()
        assert scope_a != scope_b
        rec.send(track="t", key=(scope_a, 0), time=0)
        rec.deliver(track="t", key=(scope_b, 0), time=1)
        assert rec.edges == []
        rec.deliver(track="t", key=(scope_a, 0), time=2)
        assert len(rec.edges) == 1

    def test_counts(self):
        rec = SpanRecorder()
        rec.begin_span("s", kind="k", track="t", start=0)
        rec.send(track="t", key=1, time=0)
        rec.deliver(track="t", key=1, time=1)
        assert rec.counts() == {"spans": 1, "events": 2, "edges": 1}
        assert len(rec) == 1


class TestActivation:
    def test_disabled_by_default(self):
        assert active_recorder() is None
        assert not tracing_enabled()

    def test_enable_disable(self):
        recorder = enable_tracing()
        assert active_recorder() is recorder
        assert tracing_enabled()
        assert disable_tracing() is recorder
        assert active_recorder() is None

    def test_use_recorder_restores_previous(self):
        outer = enable_tracing()
        inner = SpanRecorder()
        with use_recorder(inner):
            assert active_recorder() is inner
        assert active_recorder() is outer
        disable_tracing()
