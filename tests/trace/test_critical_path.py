"""Critical-path extraction and round attribution (repro.trace)."""

import pytest

from repro.adversary.standard import OnTimeAdversary
from repro.core.api import run_commit
from repro.sim.rounds import RoundAnalyzer
from repro.trace.build import record_run
from repro.trace.critical_path import (
    critical_path_from_run,
    critical_paths_from_records,
)
from repro.trace.export import recorder_to_records
from repro.trace.spans import SpanRecorder


def _ontime_outcome(seed, votes=(1, 1, 1, 1, 1), K=4):
    return run_commit(
        list(votes),
        K=K,
        seed=seed,
        adversary=OnTimeAdversary(K=K, seed=seed),
        max_steps=50_000,
    )


class TestFromRun:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 11])
    def test_chain_round_span_matches_decision_round(self, seed):
        """ISSUE acceptance: on an E2-style run (on-time delivery,
        ``K = 4``) the longest causal chain fully accounts for the
        decision round — no round ends on the timer alone."""
        outcome = _ontime_outcome(seed)
        assert outcome.terminated
        paths = critical_path_from_run(outcome.run)
        assert paths, "every on-time all-commit run decides"
        analyzer = RoundAnalyzer(outcome.run)
        assert (
            max(p.round_span for p in paths)
            == analyzer.max_decision_round()
        )
        # Per processor the chain never overshoots its decision round
        # (round_span counts *sender* rounds, so a decision triggered
        # by a prior-round message may trail it by one), and at least
        # one decider's chain accounts for its decision round exactly.
        assert all(
            p.timer_gap is not None and p.timer_gap >= 0 for p in paths
        )
        assert any(p.timer_gap == 0 for p in paths)

    def test_one_path_per_decider_with_nonempty_chain(self):
        outcome = _ontime_outcome(7, votes=(1, 1, 0, 1, 1))
        paths = critical_path_from_run(outcome.run)
        deciders = {
            pid
            for pid, decision in outcome.run.decisions.items()
            if decision is not None
        }
        assert {p.pid for p in paths} == deciders
        for path in paths:
            assert path.length >= 1
            assert path.hops[-1].recipient == path.pid
            # Hops are causally ordered: each received no later than
            # the next was sent.
            for earlier, later in zip(path.hops, path.hops[1:]):
                assert earlier.receive_time <= later.send_time
                assert earlier.recipient == later.sender

    def test_rounds_monotone_along_chain(self):
        outcome = _ontime_outcome(3)
        for path in critical_path_from_run(outcome.run):
            labelled = [h.round for h in path.hops if h.round is not None]
            assert labelled == sorted(labelled)

    def test_undecided_run_yields_no_paths(self):
        # A run cut off almost immediately decides nothing.
        outcome = run_commit([1, 1, 1], K=4, seed=0, max_steps=4)
        assert not outcome.terminated
        assert critical_path_from_run(outcome.run) == []


class TestFromRecords:
    def test_agrees_with_run_analysis(self):
        outcome = _ontime_outcome(7, votes=(1, 1, 0, 1, 1))
        from_run = critical_path_from_run(outcome.run)

        rec = SpanRecorder()
        record_run(rec, outcome.run)
        from_records = critical_paths_from_records(recorder_to_records(rec))

        assert len(from_records) == len(from_run)
        for a, b in zip(from_run, from_records):
            assert (a.pid, a.decision) == (b.pid, b.decision)
            assert a.round_span == b.round_span
            assert a.length == b.length
            assert a.decision_round == b.decision_round

    def test_campaign_trace_yields_paths_per_trial(self):
        rec = SpanRecorder()
        for trial, seed in enumerate([0, 1]):
            outer = rec.begin_span(
                f"trial-{seed}", kind="trial", track="campaign", start=trial
            )
            outcome = _ontime_outcome(seed)
            record_run(rec, outcome.run)
            rec.end_span(outer, trial + 1)
        paths = critical_paths_from_records(recorder_to_records(rec))
        # Two trials, five deciders each; trial labels differ.
        assert len(paths) == 10
        assert len({p.trial for p in paths}) == 2

    def test_to_dict_round_trips_fields(self):
        outcome = _ontime_outcome(0)
        path = critical_path_from_run(outcome.run)[0]
        doc = path.to_dict()
        assert doc["pid"] == path.pid
        assert doc["length"] == path.length == len(doc["hops"])
        assert doc["round_span"] == path.round_span
        assert doc["timer_gap"] == path.timer_gap
        assert doc["hops"][0]["sender"] == path.hops[0].sender
