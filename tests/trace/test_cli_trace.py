"""CLI plumbing for span tracing: --trace-spans, --version, repro trace."""

import json

import pytest

from repro.cli import main
from repro.trace.export import recorder_to_records
from repro.trace.spans import SpanRecorder
from repro.telemetry.runio import write_jsonl_records


def _traced_run(tmp_path, seed="7", votes="1,1,0,1,1"):
    path = tmp_path / "spans.jsonl"
    code = main(
        [
            "run-commit",
            "--votes",
            votes,
            "--adversary",
            "ontime",
            "--seed",
            seed,
            "--trace-spans",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"


class TestTraceSpansFlag:
    def test_run_commit_writes_span_trace(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        out = capsys.readouterr().out
        assert path.exists()
        assert "span trace written to" in out
        first = json.loads(path.read_text().splitlines()[0])
        assert first["schema"] == "repro.span-trace"

    def test_tracing_uninstalled_after_command(self, tmp_path):
        from repro.trace.spans import tracing_enabled

        _traced_run(tmp_path)
        assert not tracing_enabled()

    def test_serve_metrics_announces_endpoint(self, tmp_path, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1",
                "--serve-metrics",
                "0",
            ]
        )
        assert code == 0
        assert "serving metrics on http://" in capsys.readouterr().err


class TestTraceSummarize:
    def test_summarize_text(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans sim/trial: 1" in out
        assert "causal edges" in out

    def test_summarize_json(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trials"] == 1
        assert doc["edges"] > 0

    def test_empty_trace_exits_4(self, tmp_path, capsys):
        path = write_jsonl_records(
            recorder_to_records(SpanRecorder()), tmp_path / "empty.jsonl"
        )
        assert main(["trace", "summarize", str(path)]) == 4
        assert "no spans recorded" in capsys.readouterr().err

    def test_unreadable_trace_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "missing.jsonl"
        assert main(["trace", "summarize", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceExport:
    def test_chrome_export(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        out_path = tmp_path / "trace.chrome.json"
        code = main(
            ["trace", "export", str(path), "--out", str(out_path)]
        )
        assert code == 0
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert {"M", "X", "i", "s", "f"} <= phases

    def test_jsonl_reexport_is_byte_identical(self, tmp_path):
        path = _traced_run(tmp_path)
        out_path = tmp_path / "roundtrip.jsonl"
        code = main(
            [
                "trace",
                "export",
                str(path),
                "--format",
                "jsonl",
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        assert out_path.read_bytes() == path.read_bytes()


class TestTraceCriticalPath:
    def test_text_output_reports_round_attribution(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "critical-path", str(path)]) == 0
        out = capsys.readouterr().out
        assert "decision round" in out
        assert "max chain round span" in out

    def test_json_round_span_equals_decision_round(self, tmp_path, capsys):
        # ISSUE acceptance criterion, end to end through the CLI: on an
        # E2-style K=4 on-time run the reported causal-chain round span
        # equals the observed decision round.
        path = _traced_run(tmp_path, votes="1,1,1,1,1")
        capsys.readouterr()
        assert main(["trace", "critical-path", str(path), "--json"]) == 0
        paths = json.loads(capsys.readouterr().out)
        assert paths
        for doc in paths:
            assert doc["round_span"] == doc["decision_round"]
            assert doc["timer_gap"] == 0

    def test_hops_listing(self, tmp_path, capsys):
        path = _traced_run(tmp_path)
        capsys.readouterr()
        assert main(["trace", "critical-path", str(path), "--hops"]) == 0
        assert " -> p" in capsys.readouterr().out
