"""The live metrics endpoint (repro.telemetry.server)."""

import urllib.error
import urllib.request

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.telemetry.registry import MetricsRegistry, use_registry
from repro.telemetry.server import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsServer,
    serving_metrics,
)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read()


class TestMetricsServer:
    def test_healthz(self):
        with MetricsServer(port=0) as server:
            status, _headers, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_metrics_renders_registry(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter(
            "campaign_plans_executed_total", help="plans done"
        ).inc(3)
        with MetricsServer(port=0, registry=registry) as server:
            status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE campaign_plans_executed_total counter" in text
        assert "campaign_plans_executed_total 3" in text

    def test_scrape_sees_metrics_recorded_after_start(self):
        registry = MetricsRegistry(enabled=True)
        with MetricsServer(port=0, registry=registry) as server:
            registry.counter("late_total", help="added post-start").inc()
            _status, _headers, body = _get(f"{server.url}/metrics")
        assert "late_total 1" in body.decode("utf-8")

    def test_unknown_path_is_404(self):
        with MetricsServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/nope")
            assert excinfo.value.code == 404

    def test_stop_is_idempotent(self):
        server = MetricsServer(port=0).start()
        server.stop()
        server.stop()

    def test_serving_metrics_context_manager(self):
        with serving_metrics(port=0) as server:
            status, _headers, _body = _get(f"{server.url}/healthz")
            assert status == 200


class TestCampaignProgressMetrics:
    def test_campaign_counters_scrapeable(self):
        """A scrape after a sim campaign sees the progress counters the
        campaign incremented live (per completed plan, not end-of-run)."""
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            run_campaign(
                CampaignConfig(plans=3, n=5, base_seed=1, tracks=("sim",)),
                workers=1,
            )
        with MetricsServer(port=0, registry=registry) as server:
            _status, _headers, body = _get(f"{server.url}/metrics")
        text = body.decode("utf-8")
        assert "campaign_plans_executed_total 3" in text
        assert "campaign_plans_planned 3" in text
