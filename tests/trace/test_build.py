"""Building the sim span tree from completed runs (repro.trace.build)."""

from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.base import CrashAt
from repro.adversary.standard import OnTimeAdversary
from repro.core.api import run_commit
from repro.sim.rounds import RoundAnalyzer
from repro.trace.build import record_run
from repro.trace.spans import SpanRecorder


def _ontime_outcome(votes=(1, 1, 0, 1, 1), seed=7, K=4):
    return run_commit(
        list(votes),
        K=K,
        seed=seed,
        adversary=OnTimeAdversary(K=K, seed=seed),
        max_steps=50_000,
    )


class TestRecordRun:
    def test_span_tree_shape(self):
        outcome = _ontime_outcome()
        rec = SpanRecorder()
        trial = record_run(rec, outcome.run)

        trial_span = rec.spans[trial]
        assert trial_span.kind == "trial"
        assert trial_span.parent is None
        assert trial_span.start == 0
        assert trial_span.end == outcome.run.event_count
        assert trial_span.attrs["n"] == 5
        assert trial_span.attrs["K"] == 4

        rounds = [s for s in rec.spans.values() if s.kind == "round"]
        phases = [s for s in rec.spans.values() if s.kind == "phase"]
        analyzer = RoundAnalyzer(outcome.run)
        assert {s.attrs["round"] for s in rounds} == set(
            range(1, analyzer.max_decision_round() + 1)
        )
        assert all(s.parent == trial for s in rounds)
        round_ids = {s.id for s in rounds}
        assert all(s.parent in round_ids for s in phases)
        # One phase per (pid, round) that the processor actually reached.
        assert len(phases) == len(
            {(s.attrs["pid"], s.attrs["round"]) for s in phases}
        )

    def test_message_events_and_edges(self):
        outcome = _ontime_outcome()
        rec = SpanRecorder()
        record_run(rec, outcome.run)

        run = outcome.run
        sends = [e for e in rec.events if e.name == "send"]
        delivers = [e for e in rec.events if e.name == "deliver"]
        assert len(sends) == len(run.envelopes)
        received = [
            env
            for env in run.envelopes.values()
            if env.receive_event is not None
        ]
        assert len(delivers) == len(received)
        # Every delivered envelope yields exactly one causal edge, and
        # the send side always precedes the deliver side.
        assert len(rec.edges) == len(received)
        assert all(edge.src < edge.dst for edge in rec.edges)

    def test_decide_events_one_per_decider(self):
        outcome = _ontime_outcome()
        rec = SpanRecorder()
        record_run(rec, outcome.run)
        decides = [e for e in rec.events if e.name == "decide"]
        deciders = {
            pid
            for pid, decision in outcome.run.decisions.items()
            if decision is not None
        }
        assert {e.attrs["pid"] for e in decides} == deciders
        assert len(decides) == len(deciders)
        for event in decides:
            assert event.attrs["decision"] in (0, 1)
            assert event.attrs["round"] is not None

    def test_crash_events_recorded(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=4, cycle=2)], seed=3
        )
        outcome = run_commit(
            [1, 1, 1, 1, 1], K=4, seed=3, adversary=adversary
        )
        rec = SpanRecorder()
        record_run(rec, outcome.run)
        crashes = [e for e in rec.events if e.name == "crash"]
        assert {e.attrs["pid"] for e in crashes} == {4}

    def test_trial_nests_under_open_span(self):
        outcome = _ontime_outcome()
        rec = SpanRecorder()
        outer = rec.begin_span(
            "trial-0", kind="trial", track="campaign", start=0
        )
        trial = record_run(rec, outcome.run)
        assert rec.spans[trial].parent == outer

    def test_extra_attrs_land_on_trial_span(self):
        outcome = _ontime_outcome()
        rec = SpanRecorder()
        trial = record_run(rec, outcome.run, outcome="decided")
        assert rec.spans[trial].attrs["outcome"] == "decided"
