"""Span-trace serialization: JSONL round-trip and Chrome export."""

import json

import pytest

from repro.errors import AnalysisError
from repro.trace.export import (
    SPAN_TRACE_SCHEMA,
    SPAN_TRACE_VERSION,
    read_span_trace,
    recorder_to_records,
    summarize_trace,
    to_chrome_trace,
    trace_from_records,
    write_chrome_trace,
    write_span_trace,
)
from repro.trace.spans import SpanRecorder


def _sample_recorder() -> SpanRecorder:
    rec = SpanRecorder()
    trial = rec.begin_span(
        "sim-run", kind="trial", track="sim", start=0, n=3
    )
    rec.begin_span(
        "round-1", kind="round", track="sim", start=0, parent=trial, round=1
    )
    rec.send(track="sim", key=(1, 0), time=0, sender=0, recipient=1)
    rec.deliver(track="sim", key=(1, 0), time=2, sender=0, recipient=1)
    rec.point("decide", track="sim", time=3, pid=1, decision=1)
    rec.end_span(2, 4)
    rec.end_span(trial, 5)
    return rec


class TestJsonlRoundTrip:
    def test_records_round_trip(self):
        rec = _sample_recorder()
        records = recorder_to_records(rec)
        assert records[0] == {
            "record": "header",
            "schema": SPAN_TRACE_SCHEMA,
            "version": SPAN_TRACE_VERSION,
        }
        assert records[-1]["record"] == "final"
        trace = trace_from_records(records)
        assert len(trace.spans) == 2
        assert len(trace.events) == 3
        assert len(trace.edges) == 1
        assert not trace.empty
        # Parsed records serialize back identically.
        assert trace.spans[0].attrs == {"n": 3}
        assert trace.edges[0].kind == "message"

    def test_file_round_trip(self, tmp_path):
        rec = _sample_recorder()
        path = write_span_trace(rec, tmp_path / "trace.jsonl")
        trace = read_span_trace(path)
        assert summarize_trace(trace)["spans"] == 2

    def test_empty_recorder_parses_as_empty(self):
        trace = trace_from_records(recorder_to_records(SpanRecorder()))
        assert trace.empty

    def test_truncated_document_rejected(self):
        records = recorder_to_records(_sample_recorder())[:-1]
        with pytest.raises(AnalysisError, match="truncated"):
            trace_from_records(records)

    def test_count_mismatch_rejected(self):
        records = recorder_to_records(_sample_recorder())
        records[-1]["spans"] += 1
        with pytest.raises(AnalysisError, match="counts mismatch"):
            trace_from_records(records)

    def test_unknown_record_type_rejected(self):
        records = recorder_to_records(_sample_recorder())
        records.insert(1, {"record": "mystery"})
        with pytest.raises(AnalysisError, match="unknown record"):
            trace_from_records(records)

    def test_malformed_record_rejected(self):
        records = recorder_to_records(_sample_recorder())
        del records[1]["name"]
        with pytest.raises(AnalysisError, match="malformed"):
            trace_from_records(records)


class TestChromeExport:
    def test_event_structure(self):
        trace = trace_from_records(recorder_to_records(_sample_recorder()))
        doc = to_chrome_trace(trace)
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        assert len(by_phase["M"]) == 1  # one track -> one process name
        assert len(by_phase["X"]) == 2  # spans
        assert len(by_phase["i"]) == 3  # points
        assert len(by_phase["s"]) == 1  # flow start per edge
        assert len(by_phase["f"]) == 1  # flow finish per edge
        assert by_phase["s"][0]["id"] == by_phase["f"][0]["id"]
        assert doc["otherData"]["schema"] == SPAN_TRACE_SCHEMA

    def test_runtime_seconds_scale_to_microseconds(self):
        rec = SpanRecorder()
        span = rec.begin_span(
            "cluster-run", kind="trial", track="runtime", start=1.5
        )
        rec.end_span(span, 2.5)
        trace = trace_from_records(recorder_to_records(rec))
        (complete,) = [
            e for e in to_chrome_trace(trace)["traceEvents"]
            if e["ph"] == "X"
        ]
        assert complete["ts"] == pytest.approx(1_500_000.0)
        assert complete["dur"] == pytest.approx(1_000_000.0)

    def test_written_file_is_valid_json(self, tmp_path):
        trace = trace_from_records(recorder_to_records(_sample_recorder()))
        path = write_chrome_trace(trace, tmp_path / "trace.json")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert "traceEvents" in doc


class TestSummarize:
    def test_summary_fields(self):
        trace = trace_from_records(recorder_to_records(_sample_recorder()))
        summary = summarize_trace(trace)
        assert summary["tracks"] == ["sim"]
        assert summary["spans_by_kind"] == {"sim/round": 1, "sim/trial": 1}
        assert summary["events_by_name"] == {
            "decide": 1,
            "deliver": 1,
            "send": 1,
        }
        assert summary["trials"] == 1
