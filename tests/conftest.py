"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.adversary.standard import SynchronousAdversary
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.core.commit import CommitProgram
from repro.engine import seeds as seed_scheme
from repro.sim.scheduler import Simulation
from repro.telemetry.registry import MetricsRegistry, set_registry


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    """Give every test a fresh, disabled default telemetry registry.

    Tests (and the CLI's ``--json`` paths) may enable telemetry on the
    default registry; swapping in a throwaway keeps that state from
    leaking across tests.
    """
    previous = set_registry(MetricsRegistry(enabled=False))
    yield
    set_registry(previous)


@pytest.fixture(autouse=True)
def _isolated_tracing():
    """Keep span tracing (repro.trace) from leaking across tests."""
    from repro.trace import spans as trace_spans

    trace_spans.disable_tracing()
    yield
    trace_spans.disable_tracing()


def make_commit_simulation(
    votes,
    t=None,
    K=4,
    adversary=None,
    seed=0,
    max_steps=50_000,
    allow_sub_resilience=False,
    **program_kwargs,
):
    """Build a ready-to-run commit simulation (returns sim and programs)."""
    n = len(votes)
    if t is None:
        t = (n - 1) // 2
    programs = [
        CommitProgram(
            pid=pid,
            n=n,
            t=t,
            initial_vote=vote,
            K=K,
            allow_sub_resilience=allow_sub_resilience,
            **program_kwargs,
        )
        for pid, vote in enumerate(votes)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation, programs


def make_agreement_simulation(
    values,
    t=None,
    K=4,
    adversary=None,
    seed=0,
    coins=None,
    max_steps=50_000,
    **program_kwargs,
):
    """Build a ready-to-run agreement simulation (returns sim and programs)."""
    n = len(values)
    if t is None:
        t = (n - 1) // 2
    if coins is None:
        coins = shared_coins(
            n, seed=seed_scheme.derive(seed, seed_scheme.FIXTURE_COIN_STREAM)
        )
    programs = [
        AgreementProgram(
            pid=pid,
            n=n,
            t=t,
            initial_value=value,
            coins=coins,
            **program_kwargs,
        )
        for pid, value in enumerate(values)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation, programs


@pytest.fixture
def commit_all_ones():
    """A standard n=5 all-commit simulation under the synchronous adversary."""
    return make_commit_simulation([1, 1, 1, 1, 1])
