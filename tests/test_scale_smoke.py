"""Scale smoke tests: the kernel handles larger systems comfortably."""

from repro.adversary.standard import OnTimeAdversary, SynchronousAdversary
from tests.conftest import make_agreement_simulation, make_commit_simulation


class TestScale:
    def test_commit_at_n_25(self):
        sim, _ = make_commit_simulation([1] * 25, t=12)
        result = sim.run()
        assert result.terminated
        assert set(result.decisions().values()) == {1}

    def test_commit_at_n_51_synchronous(self):
        sim, _ = make_commit_simulation([1] * 51, t=25)
        result = sim.run()
        assert result.terminated
        assert result.run.agreement_holds()

    def test_agreement_at_n_33_with_jitter(self):
        sim, _ = make_agreement_simulation(
            [pid % 2 for pid in range(33)],
            t=16,
            adversary=OnTimeAdversary(K=4, seed=1),
        )
        result = sim.run()
        assert result.terminated
        assert len(result.run.decision_values()) == 1

    def test_round_analysis_scales(self):
        sim, _ = make_commit_simulation([1] * 25, t=12)
        outcome = sim.run()
        from repro.sim.rounds import RoundAnalyzer

        analyzer = RoundAnalyzer(outcome.run)
        assert analyzer.max_decision_round() <= 14
