"""Tests for replay artifacts: write, read, byte-identical re-execution."""

from __future__ import annotations

import json

import pytest

from repro.counterexample.replay import (
    ARTIFACT_SCHEMA,
    ARTIFACT_VERSION,
    artifacts_from_report,
    first_violating_case,
    read_artifact,
    verify_replay,
    violated_properties,
    write_artifact,
)
from repro.errors import AnalysisError
from repro.faults.campaign import (
    CampaignConfig,
    TrialCase,
    case_from_config,
    execute_trial_case,
    run_campaign,
)
from repro.faults.plan import CrashFault, FaultPlan

# Small but two-track: sim catches the planted bug deterministically,
# runtime exercises the virtual clock path.
BROKEN = CampaignConfig(
    n=4, t=1, plans=8, base_seed=0, program="broken-commit"
)


def _known_case() -> TrialCase:
    # A deterministic single-crash case that trips the planted bug:
    # crash one participant mid-vote-collection so survivors time out
    # and unilaterally decide their own vote over a standing 0 vote.
    return TrialCase(
        n=4,
        t=1,
        K=4,
        votes=(1, 0, 1, 1),
        plan=FaultPlan(n=4, crashes=(CrashFault(pid=2, cycle=2),)),
        seed=0,
        program="broken-commit",
    )


class TestArtifactRoundTrip:
    def test_write_read_preserves_case_and_results(self, tmp_path):
        case = _known_case()
        result = execute_trial_case(case)
        path = write_artifact(case, result, tmp_path / "ce.jsonl")
        loaded_case, expected = read_artifact(path)
        assert loaded_case == case
        assert set(expected) == set(case.tracks)
        for track in case.tracks:
            assert expected[track] == result["tracks"][track]

    def test_header_is_schema_versioned(self, tmp_path):
        case = _known_case()
        path = write_artifact(
            case, execute_trial_case(case), tmp_path / "ce.jsonl"
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "record": "header",
            "schema": ARTIFACT_SCHEMA,
            "version": ARTIFACT_VERSION,
        }

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"record": "header", "schema": ARTIFACT_SCHEMA, "version": 99}
            )
            + "\n"
        )
        with pytest.raises(AnalysisError, match="version"):
            read_artifact(path)

    def test_missing_case_record_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text(
            json.dumps(
                {
                    "record": "header",
                    "schema": ARTIFACT_SCHEMA,
                    "version": ARTIFACT_VERSION,
                }
            )
            + "\n"
        )
        with pytest.raises(AnalysisError, match="no case record"):
            read_artifact(path)


class TestVerifyReplay:
    def test_replay_is_byte_identical_on_both_tracks(self, tmp_path):
        case = _known_case()
        path = write_artifact(
            case, execute_trial_case(case), tmp_path / "ce.jsonl"
        )
        report = verify_replay(path)
        assert report["match"] is True
        assert set(report["tracks"]) == {"sim", "runtime"}
        assert all(data["match"] for data in report["tracks"].values())
        assert report["properties"]  # the planted bug violates safety

    def test_tampered_expectation_is_flagged_with_keys(self, tmp_path):
        case = _known_case()
        result = execute_trial_case(case)
        # Corrupt the recorded sim decisions before writing.
        result["tracks"]["sim"]["decisions"] = [
            None for _ in result["tracks"]["sim"]["decisions"]
        ]
        path = write_artifact(case, result, tmp_path / "ce.jsonl")
        report = verify_replay(path)
        assert report["match"] is False
        assert "decisions" in report["tracks"]["sim"]["diverging_keys"]
        assert report["tracks"]["runtime"]["match"] is True


class TestCampaignIntegration:
    def test_artifacts_cut_from_report_replay_cleanly(self, tmp_path):
        report = run_campaign(BROKEN)
        assert report["summary"]["safety_violations"] > 0
        written = artifacts_from_report(report, tmp_path)
        assert written
        for path in written:
            verdict = verify_replay(path)
            assert verdict["match"] is True, path
            assert verdict["properties"]

    def test_safe_campaign_cuts_no_artifacts(self, tmp_path):
        safe = CampaignConfig(n=4, t=1, plans=3, program="commit")
        report = run_campaign(safe)
        if report["summary"]["safety_violations"] == 0:
            assert artifacts_from_report(report, tmp_path) == []

    def test_first_violating_case_matches_campaign_draw(self):
        found = first_violating_case(BROKEN)
        assert found is not None
        case, result = found
        assert violated_properties(result["tracks"])
        # The returned case is exactly the campaign's draw for that seed.
        assert case == case_from_config(BROKEN, case.seed)
        # No earlier seed violates: the scan is minimal in seed order.
        for seed in range(BROKEN.base_seed, case.seed):
            earlier = execute_trial_case(case_from_config(BROKEN, seed))
            assert not violated_properties(earlier["tracks"])
