"""Tests for the cross-track differential oracle."""

from __future__ import annotations

import json

from repro.counterexample.oracle import (
    DIFFERENTIAL_SCHEMA,
    classify_trial,
    render_differential_summary,
    run_differential,
)
from repro.faults.campaign import CampaignConfig


def _trial(
    sim_violations=(),
    runtime_violations=(),
    sim_outcome="terminated",
    runtime_outcome="terminated",
    sim_decisions=(1, 1, 1),
    runtime_decisions=(1, 1, 1),
    expect_termination=True,
):
    def track(violations, outcome, decisions):
        return {
            "outcome": outcome,
            "decisions": list(decisions),
            "crashed": [],
            "safety": {
                "violations": [
                    {"property": prop, "detail": "x"} for prop in violations
                ]
            },
        }

    return {
        "seed": 7,
        "expect_termination": expect_termination,
        "tracks": {
            "sim": track(sim_violations, sim_outcome, sim_decisions),
            "runtime": track(
                runtime_violations, runtime_outcome, runtime_decisions
            ),
        },
    }


class TestClassifyTrial:
    def test_agreeing_tracks_produce_nothing(self):
        verdict = classify_trial(_trial())
        assert verdict["findings"] == []
        assert not verdict["decision_drift"]
        assert not verdict["termination_drift"]

    def test_mismatched_safety_sets_are_a_finding(self):
        verdict = classify_trial(_trial(sim_violations=("agreement",)))
        kinds = [f["kind"] for f in verdict["findings"]]
        assert kinds == ["safety-mismatch"]
        assert verdict["findings"][0]["sim"] == ["agreement"]
        assert verdict["findings"][0]["runtime"] == []

    def test_shared_safety_violation_is_not_a_mismatch(self):
        # Both tracks catching the same bug is detector agreement.
        verdict = classify_trial(
            _trial(
                sim_violations=("agreement",),
                runtime_violations=("agreement",),
            )
        )
        assert verdict["findings"] == []

    def test_liveness_violations_do_not_enter_the_safety_set(self):
        verdict = classify_trial(
            _trial(sim_violations=("nonblocking",))
        )
        assert verdict["findings"] == []

    def test_guaranteed_termination_disagreement_is_a_finding(self):
        verdict = classify_trial(
            _trial(runtime_outcome="nonterminated", expect_termination=True)
        )
        kinds = [f["kind"] for f in verdict["findings"]]
        assert kinds == ["termination-mismatch"]

    def test_unguaranteed_termination_disagreement_is_benign(self):
        verdict = classify_trial(
            _trial(runtime_outcome="nonterminated", expect_termination=False)
        )
        assert verdict["findings"] == []
        assert verdict["termination_drift"]

    def test_decision_drift_is_benign_not_a_finding(self):
        # Protocol 2's decision is schedule-dependent: commit on one
        # track, abort on the other is legal as long as each track is
        # internally safe.
        verdict = classify_trial(
            _trial(sim_decisions=(1, 1, 1), runtime_decisions=(0, 0, 0))
        )
        assert verdict["findings"] == []
        assert verdict["decision_drift"]


class TestRunDifferential:
    def test_correct_protocol_has_zero_findings(self):
        report = run_differential(
            CampaignConfig(n=4, t=1, plans=12, base_seed=0)
        )
        assert report["schema"] == DIFFERENTIAL_SCHEMA
        assert report["summary"]["findings"] == 0
        assert report["summary"]["plans"] == 12
        assert json.loads(json.dumps(report)) == report

    def test_single_track_config_is_forced_to_both(self):
        report = run_differential(
            CampaignConfig(n=4, t=1, plans=2, tracks=("sim",))
        )
        assert set(report["config"]["tracks"]) == {"sim", "runtime"}

    def test_summary_counts_match_findings_list(self):
        report = run_differential(
            CampaignConfig(
                n=4, t=1, plans=10, base_seed=0, program="broken-commit"
            )
        )
        assert report["summary"]["findings"] == len(report["findings"])
        total_by_kind = sum(
            report["summary"]["findings_by_kind"].values()
        )
        assert total_by_kind == report["summary"]["findings"]
        for finding in report["findings"]:
            assert "plan" in finding  # every finding is replayable

    def test_render_summary_verdict(self):
        report = run_differential(CampaignConfig(n=4, t=1, plans=4))
        text = render_differential_summary(report)
        assert "4 plans" in text
        assert ("CONSISTENT" in text) or ("DIVERGED" in text)
