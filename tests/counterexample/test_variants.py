"""Tests for the program-variant registry and the planted-bug fixture."""

from __future__ import annotations

import pytest

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.commit import CommitProgram
from repro.errors import ConfigurationError
from repro.faults.variants import (
    PROGRAM_VARIANTS,
    BrokenCommitProgram,
    make_programs,
    resolve_variant,
)
from repro.sim.scheduler import Simulation

N, T, K = 5, 2, 4


class TestRegistry:
    def test_commit_resolves_to_protocol_two(self):
        assert resolve_variant("commit") is CommitProgram

    def test_broken_commit_resolves_to_fixture(self):
        assert resolve_variant("broken-commit") is BrokenCommitProgram

    def test_unknown_variant_rejected_with_choices(self):
        with pytest.raises(ConfigurationError, match="broken-commit"):
            resolve_variant("fixed-commit")

    def test_registry_names_are_stable(self):
        # Artifact and campaign schemas embed these names; renaming them
        # breaks replay of archived counterexamples.  Growing the set
        # (the atlas baselines) is fine; the historical names must stay.
        assert {"commit", "broken-commit"} <= set(PROGRAM_VARIANTS)
        assert set(PROGRAM_VARIANTS) == {
            "commit",
            "broken-commit",
            "twopc",
            "twopc-block",
            "threepc",
        }

    def test_make_programs_one_per_pid(self):
        programs = make_programs("broken-commit", N, T, [1, 0, 1, 1, 0], K)
        assert len(programs) == N
        assert all(isinstance(p, BrokenCommitProgram) for p in programs)
        assert [p.pid for p in programs] == list(range(N))
        assert [int(p.initial_vote) for p in programs] == [1, 0, 1, 1, 0]


def _run(programs, adversary, seed=0):
    return Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=T,
        seed=seed,
        max_steps=20_000,
    ).run()


class TestBrokenCommitProgram:
    def test_behaves_like_protocol_two_on_clean_schedules(self):
        # Without a vote-phase timeout the planted bug never triggers, so
        # the variant is indistinguishable from the correct protocol.
        for votes in ([1] * N, [1, 0, 1, 1, 1]):
            broken = _run(
                make_programs("broken-commit", N, T, votes, K),
                SynchronousAdversary(seed=0),
            )
            correct = _run(
                make_programs("commit", N, T, votes, K),
                SynchronousAdversary(seed=0),
            )
            assert broken.run.decisions == correct.run.decisions

    def test_crash_with_mixed_votes_splits_the_decision(self):
        # Crash the 0-voter mid-protocol: survivors that time out on the
        # vote collection unilaterally decide their own vote 1 (COMMIT)
        # while the bug's victimless path still aborts somewhere —
        # violating agreement/abort validity.  Searched over a few crash
        # schedules because the exact split is schedule-dependent.
        for seed in range(8):
            votes = [1, 0, 1, 1, 1]
            result = _run(
                make_programs("broken-commit", N, T, votes, K),
                ScheduledCrashAdversary(
                    crash_plan=(CrashAt(pid=1, cycle=seed),), seed=seed
                ),
                seed=seed,
            )
            decided = {
                bit
                for bit in result.run.decisions.values()
                if bit is not None
            }
            if 1 in decided:
                # A commit decision with a 0 vote on the table: the bug
                # fired.  (Agreement may or may not also split.)
                return
        pytest.fail("planted bug never produced a commit with a 0 vote")
