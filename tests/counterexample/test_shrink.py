"""Tests for the delta-debugging FaultPlan minimizer."""

from __future__ import annotations

import pytest

from repro.counterexample.replay import first_violating_case
from repro.counterexample.shrink import (
    ShrinkResult,
    _case_candidates,
    case_fails,
    case_size,
    render_shrink_summary,
    shrink_case,
)
from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignConfig, TrialCase
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    LinkDelay,
    LinkLoss,
    PartitionWindow,
)

BROKEN = CampaignConfig(
    n=4, t=1, plans=8, base_seed=0, program="broken-commit"
)


def _noisy_case() -> TrialCase:
    # The deterministic planted-bug trigger (crash pid 2 at cycle 2)
    # buried under unrelated noise the shrinker should strip.
    return TrialCase(
        n=4,
        t=1,
        K=4,
        votes=(1, 0, 1, 1),
        plan=FaultPlan(
            n=4,
            crashes=(CrashFault(pid=2, cycle=2),),
            partitions=(
                PartitionWindow(
                    groups=((0, 1),), start_cycle=20, heal_cycle=24
                ),
            ),
            loss=LinkLoss(duplicate=0.1),
            link_delays=(
                LinkDelay(sender=3, recipient=0, min_cycles=1, max_cycles=2),
            ),
        ),
        seed=0,
        program="broken-commit",
    )


class TestSizeAndCandidates:
    def test_size_strictly_decreases_across_candidates(self):
        case = _noisy_case()
        for candidate in _case_candidates(case):
            assert case_size(candidate) < case_size(case)

    def test_every_ingredient_has_a_dropping_candidate(self):
        case = _noisy_case()
        entry_counts = {
            c.plan.entry_count for c in _case_candidates(case)
        }
        # 4-entry plan: each single-ingredient drop must be on offer.
        assert case.plan.entry_count - 1 in entry_counts

    def test_n_shrink_remaps_surviving_pids(self):
        case = _noisy_case()
        smaller = [c for c in _case_candidates(case) if c.n == case.n - 1]
        assert smaller
        for candidate in smaller:
            assert len(candidate.votes) == candidate.n
            assert candidate.plan.n == candidate.n
            for crash in candidate.plan.crashes:
                assert 0 <= crash.pid < candidate.n


class TestShrinkCase:
    def test_rejects_non_violating_case(self):
        healthy = _noisy_case().replace(program="commit")
        with pytest.raises(ConfigurationError, match="violating"):
            shrink_case(healthy)

    def test_minimal_case_still_fails_and_is_locally_minimal(self):
        result = shrink_case(_noisy_case())
        assert isinstance(result, ShrinkResult)
        assert case_fails(result.minimal)
        assert case_size(result.minimal) < case_size(result.original)
        # Local minimality: no single remaining reduction still fails.
        for candidate in _case_candidates(result.minimal):
            assert not case_fails(candidate)

    def test_noise_is_stripped(self):
        result = shrink_case(_noisy_case())
        # The planted bug needs at most the crash; every byte of noise
        # (partition, duplication, delay override) must be gone.
        assert result.minimal.plan.entry_count <= 2

    def test_parallel_probing_matches_serial(self):
        serial = shrink_case(_noisy_case(), workers=1)
        parallel = shrink_case(_noisy_case(), workers=3)
        assert serial.minimal == parallel.minimal
        assert serial.history == parallel.history

    def test_to_dict_is_json_safe(self):
        import json

        result = shrink_case(_noisy_case(), workers=1)
        doc = result.to_dict()
        assert json.loads(json.dumps(doc)) == doc
        assert doc["minimal_entries"] <= doc["original_entries"]

    def test_render_summary_mentions_entry_counts(self):
        result = shrink_case(_noisy_case(), workers=1)
        text = render_shrink_summary(result)
        assert f"{result.minimal.plan.entry_count}-entry plan" in text


class TestEndToEnd:
    def test_campaign_finding_shrinks_to_two_entries_or_fewer(self):
        found = first_violating_case(BROKEN)
        assert found is not None
        case, _result = found
        result = shrink_case(case)
        assert case_fails(result.minimal)
        assert result.minimal.plan.entry_count <= 2


class TestScheduledCaseSize:
    """The size measure orders scheduled cases by their script."""

    def _case(self, schedule):
        from repro.faults.campaign import TrialCase
        from repro.faults.plan import FaultPlan

        return TrialCase(
            n=3,
            t=1,
            K=2,
            votes=(0, 1, 0),
            plan=FaultPlan(n=3),
            seed=0,
            tracks=("sim",),
            program="broken-commit",
            schedule=schedule,
        )

    def test_fewer_decisions_is_smaller(self):
        from repro.counterexample.shrink import case_size
        from repro.sim.decisions import StepDecision

        short = self._case((StepDecision(pid=0),))
        long = self._case((StepDecision(pid=0), StepDecision(pid=1)))
        assert case_size(short) < case_size(long)

    def test_fewer_deliveries_is_smaller_at_equal_length(self):
        from repro.counterexample.shrink import case_size
        from repro.sim.decisions import StepDecision

        lean = self._case((StepDecision(pid=0, deliver=()),))
        full = self._case((StepDecision(pid=0, deliver=(1, 2)),))
        assert case_size(lean) < case_size(full)

    def test_schedule_candidates_strictly_shrink(self):
        from repro.counterexample.shrink import _case_candidates, case_size
        from repro.sim.decisions import CrashDecision, StepDecision

        case = self._case(
            (
                StepDecision(pid=0, deliver=(1,)),
                CrashDecision(pid=0),
                StepDecision(pid=1, deliver=()),
            )
        )
        candidates = _case_candidates(case)
        assert candidates
        assert all(
            case_size(candidate) < case_size(case)
            for candidate in candidates
        )
        # Scheduled cases only ever offer schedule reductions.
        assert all(
            candidate.schedule is not None for candidate in candidates
        )
