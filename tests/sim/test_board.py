"""Tests for the bulletin board."""

from repro.core.messages import GoMessage, StageMessage, VoteMessage
from repro.sim.board import BulletinBoard
from repro.sim.message import RawPayload, ReceivedPayload


def entry(sender: int, payload) -> ReceivedPayload:
    return ReceivedPayload(sender=sender, payload=payload, receive_clock=1)


class TestBulletinBoard:
    def test_starts_empty(self):
        assert len(BulletinBoard()) == 0

    def test_post_appends(self):
        board = BulletinBoard()
        board.post(entry(0, RawPayload("a")))
        assert len(board) == 1

    def test_entries_returns_copy_in_order(self):
        board = BulletinBoard()
        board.post(entry(0, RawPayload("a")))
        board.post(entry(1, RawPayload("b")))
        entries = board.entries()
        assert [e.payload.data for e in entries] == ["a", "b"]
        entries.clear()
        assert len(board) == 2

    def test_post_all(self):
        board = BulletinBoard()
        board.post_all([entry(0, RawPayload(i)) for i in range(3)])
        assert len(board) == 3

    def test_matching_filters_by_payload(self):
        board = BulletinBoard()
        board.post(entry(0, VoteMessage(vote=1)))
        board.post(entry(1, GoMessage(coins=(0, 1))))
        votes = board.matching(lambda p: isinstance(p, VoteMessage))
        assert len(votes) == 1
        assert votes[0].sender == 0

    def test_count_matching_distinct_senders(self):
        board = BulletinBoard()
        board.post(entry(0, VoteMessage(vote=1)))
        board.post(entry(0, VoteMessage(vote=1)))  # duplicate sender
        board.post(entry(1, VoteMessage(vote=0)))
        is_vote = lambda p: isinstance(p, VoteMessage)
        assert board.count_matching(is_vote, distinct_senders=True) == 2
        assert board.count_matching(is_vote, distinct_senders=False) == 3

    def test_senders_matching(self):
        board = BulletinBoard()
        board.post(entry(2, VoteMessage(vote=1)))
        board.post(entry(4, VoteMessage(vote=1)))
        assert board.senders_matching(
            lambda p: isinstance(p, VoteMessage) and p.vote == 1
        ) == {2, 4}

    def test_by_key_buckets_payloads(self):
        board = BulletinBoard()
        board.post(entry(0, StageMessage(phase=1, stage=1, value=0)))
        board.post(entry(1, StageMessage(phase=1, stage=1, value=1)))
        board.post(entry(2, StageMessage(phase=2, stage=1, value=None)))
        bucket = board.by_key(("stage", 1, 1))
        assert len(bucket) == 2
        assert board.by_key(("stage", 2, 1))[0].sender == 2
        assert board.by_key(("stage", 1, 99)) == []

    def test_senders_for_key_counts_distinct(self):
        board = BulletinBoard()
        board.post(entry(0, GoMessage(coins=(1,))))
        board.post(entry(0, GoMessage(coins=(1,))))
        board.post(entry(3, GoMessage(coins=(1,))))
        assert board.senders_for_key(("go",)) == {0, 3}
        assert board.count_for_key(("go",)) == 2

    def test_count_for_key_missing_key(self):
        assert BulletinBoard().count_for_key(("nope",)) == 0

    def test_raw_payloads_have_no_key(self):
        board = BulletinBoard()
        board.post(entry(0, RawPayload("x")))
        # RawPayload declares no board_key; only matching() can find it.
        assert board.count_matching(lambda p: True) == 1
