"""Tests for the process driver (programs, steps, waits, decisions)."""

import pytest

from repro.errors import ProtocolViolation
from repro.sim.message import MessageId, RawPayload, ReceivedPayload
from repro.sim.process import Program, SimProcess
from repro.sim.tape import RandomTape
from repro.sim.waits import ClockAtLeast, MessageCount
from repro.types import ProcessStatus


def received(sender: int, data) -> ReceivedPayload:
    return ReceivedPayload(
        sender=sender,
        payload=RawPayload(data),
        receive_clock=0,
        message_id=MessageId(-1),
    )


class EchoOnce(Program):
    """Waits for one message, echoes its data to everyone, returns it."""

    def run(self):
        yield MessageCount(lambda p: True, 1)
        data = self.board.entries()[0].payload.data
        self.broadcast(RawPayload(("echo", data)))
        return data


class DecideAtClock(Program):
    def __init__(self, pid, n, when, value):
        super().__init__(pid, n)
        self.when = when
        self.value = value

    def run(self):
        yield ClockAtLeast(self.when)
        self.decide(self.value)
        return self.value


def make(program_cls, *args, pid=0, n=3, **kwargs) -> SimProcess:
    program = program_cls(pid, n, *args, **kwargs)
    return SimProcess(program, RandomTape(seed=1))


class TestSimProcess:
    def test_clock_counts_steps(self):
        process = make(EchoOnce)
        process.on_step([])
        process.on_step([])
        assert process.clock == 2

    def test_program_blocks_on_wait(self):
        process = make(EchoOnce)
        process.on_step([])
        assert process.status is ProcessStatus.RUNNING

    def test_program_resumes_when_wait_satisfied(self):
        process = make(EchoOnce)
        process.on_step([])
        out = process.on_step([received(1, "hello")])
        assert process.status is ProcessStatus.RETURNED
        assert process.output == "hello"
        # broadcast to others (1, 2) -- self copy is board-posted locally
        assert [recipient for recipient, _ in out] == [1, 2]

    def test_one_wait_crossing_per_step(self):
        class TwoWaits(Program):
            def run(self):
                yield MessageCount(lambda p: True, 1)
                yield MessageCount(lambda p: True, 1)  # already satisfied
                return "done"

        process = SimProcess(TwoWaits(0, 2), RandomTape(seed=0))
        process.on_step([])  # starts, parks at first wait
        process.on_step([received(1, "x")])  # crosses first wait only
        assert process.status is ProcessStatus.RUNNING
        process.on_step([])  # crosses second wait
        assert process.status is ProcessStatus.RETURNED

    def test_self_send_posts_locally_without_envelope(self):
        class SelfSender(Program):
            def run(self):
                self.send(self.pid, RawPayload("mine"))
                yield MessageCount(lambda p: True, 1)
                return "saw it"

        process = SimProcess(SelfSender(0, 3), RandomTape(seed=0))
        out = process.on_step([])
        assert out == []  # nothing on the wire
        process.on_step([])
        assert process.output == "saw it"

    def test_broadcast_includes_self_post(self):
        class Broadcaster(Program):
            def run(self):
                self.broadcast(RawPayload("b"))
                yield ClockAtLeast(10**9)

        process = SimProcess(Broadcaster(1, 3), RandomTape(seed=0))
        out = process.on_step([])
        assert [recipient for recipient, _ in out] == [0, 2]
        assert len(process.board) == 1  # own copy

    def test_decision_is_absorbing(self):
        process = make(DecideAtClock, 1, 1, n=1)
        process.on_step([])
        process.on_step([])
        assert process.decision == 1
        with pytest.raises(ProtocolViolation):
            process.record_decision(0)

    def test_re_deciding_same_value_is_fine(self):
        process = make(DecideAtClock, 1, 1, n=1)
        process.on_step([])
        process.on_step([])
        process.record_decision(1)
        assert process.decision == 1

    def test_decision_clock_recorded(self):
        process = make(DecideAtClock, 3, 0, n=1)
        for _ in range(5):
            process.on_step([])
        # ClockAtLeast(3) is crossed at the step where the clock reads 3.
        assert process.decision_clock == 3

    def test_crashed_process_rejects_steps(self):
        process = make(EchoOnce)
        process.mark_crashed()
        with pytest.raises(ProtocolViolation):
            process.on_step([])

    def test_returned_process_still_ticks_and_absorbs(self):
        process = make(EchoOnce)
        process.on_step([])
        process.on_step([received(1, "x")])
        assert process.halted
        out = process.on_step([received(2, "late")])
        assert out == []
        assert process.clock == 3

    def test_piggyback_attached_to_all_envelopes(self):
        class PiggyBacker(Program):
            def run(self):
                self.set_piggyback(lambda recipient: (RawPayload("pb"),))
                self.broadcast(RawPayload("data"))
                yield ClockAtLeast(10**9)

        process = SimProcess(PiggyBacker(0, 3), RandomTape(seed=0))
        out = process.on_step([])
        for _, payloads in out:
            assert payloads[-1].data == "pb"

    def test_unhosted_program_api_raises(self):
        program = EchoOnce(0, 3)
        with pytest.raises(ProtocolViolation):
            _ = program.clock

    def test_pid_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EchoOnce(5, 3)

    def test_flip_uses_current_step_value(self):
        class Flipper(Program):
            def run(self):
                self.bits = self.flip(8)
                yield ClockAtLeast(10**9)

        a = SimProcess(Flipper(0, 1), RandomTape(seed=4))
        b = SimProcess(Flipper(0, 1), RandomTape(seed=4))
        a.on_step([])
        b.on_step([])
        assert a.program.bits == b.program.bits
