"""Tests for the t-admissibility monitor."""

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.standard import SynchronousAdversary
from tests.conftest import make_commit_simulation


class TestAdmissibilityReport:
    def test_clean_run_is_admissible(self):
        sim, _ = make_commit_simulation([1] * 5)
        result = sim.run()
        report = result.admissibility
        assert report.within_fault_budget
        assert report.crashes == ()
        assert report.admissible_so_far
        assert report.some_nonfaulty_received

    def test_crashes_within_budget(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=3, cycle=2), CrashAt(pid=4, cycle=3)]
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        report = result.admissibility
        assert report.crashes == (3, 4)
        assert report.within_fault_budget

    def test_crashes_beyond_budget_flagged(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=p, cycle=2) for p in (2, 3, 4)]
        )
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, max_steps=2_000
        )
        result = sim.run()
        report = result.admissibility
        assert len(report.crashes) == 3
        assert not report.within_fault_budget
        assert not report.admissible_so_far

    def test_terminated_run_may_leave_undelivered_messages(self):
        # Processors return as soon as their program completes; leftover
        # guaranteed envelopes are delivery debt but not a violation.
        sim, _ = make_commit_simulation([1] * 5)
        result = sim.run()
        assert result.terminated
        assert result.admissibility.undelivered_guaranteed >= 0

    def test_report_t_matches_configuration(self):
        sim, _ = make_commit_simulation([1] * 5, t=1)
        result = sim.run()
        assert result.admissibility.t == 1
