"""Tests for run traces, including the paper's lateness predicate."""

from repro.adversary.base import CycleAdversary, DelayCycles
from repro.adversary.standard import SynchronousAdversary
from repro.sim.message import RawPayload
from repro.sim.process import Program
from repro.sim.scheduler import Simulation
from repro.sim.waits import ClockAtLeast, MessageCount


class PingAll(Program):
    def run(self):
        self.broadcast(RawPayload(self.pid))
        yield MessageCount(lambda p: True, self.n)
        return True


def run_with(adversary, n=3, K=2, max_steps=5000):
    programs = [PingAll(pid, n) for pid in range(n)]
    sim = Simulation(programs, adversary, K=K, t=(n - 1) // 2, max_steps=max_steps)
    return sim.run()


class TestLateness:
    def test_prompt_delivery_is_on_time(self):
        result = run_with(SynchronousAdversary())
        assert result.run.is_on_time()
        assert result.run.late_messages() == []

    def test_delayed_delivery_is_late(self):
        slow = CycleAdversary(delivery=DelayCycles(min_cycles=5, max_cycles=5))
        result = run_with(slow, K=2)
        late = result.run.late_messages()
        assert late
        for envelope in late:
            assert result.run.is_late(envelope)

    def test_delay_below_K_is_on_time(self):
        mild = CycleAdversary(delivery=DelayCycles(min_cycles=2, max_cycles=2))
        result = run_with(mild, K=3)
        assert result.run.is_on_time()

    def test_undelivered_envelopes_are_not_late(self):
        class Mute(Program):
            def run(self):
                self.broadcast(RawPayload("x"))
                yield ClockAtLeast(3)
                return True

        hold = CycleAdversary(
            delivery=DelayCycles(min_cycles=10**6, max_cycles=10**6)
        )
        programs = [Mute(pid, 2) for pid in range(2)]
        sim = Simulation(programs, hold, K=1, t=0, max_steps=100)
        result = sim.run()
        assert result.run.is_on_time()  # nothing delivered, nothing late


class TestRunQueries:
    def test_decisions_and_values(self):
        result = run_with(SynchronousAdversary())
        run = result.run
        assert run.decision_values() == set()  # PingAll never decides
        assert run.agreement_holds()

    def test_nonfaulty_and_faulty_partition(self):
        result = run_with(SynchronousAdversary())
        run = result.run
        assert run.nonfaulty() == {0, 1, 2}
        assert run.faulty() == set()

    def test_steps_in_interval_counts_strictly_between(self):
        result = run_with(SynchronousAdversary())
        run = result.run
        total_steps = sum(1 for e in run.events if e.actor == 0 and e.kind == "step")
        assert run.steps_in_interval(0, -1, run.event_count) == total_steps
        assert run.steps_in_interval(0, 0, 1) == 0

    def test_envelopes_from_in_send_order(self):
        result = run_with(SynchronousAdversary())
        envelopes = result.run.envelopes_from(0)
        events = [e.send_event for e in envelopes]
        assert events == sorted(events)

    def test_messages_sent_counts_envelopes(self):
        result = run_with(SynchronousAdversary())
        # each of 3 processors broadcasts once to 2 peers
        assert result.run.messages_sent() == 6

    def test_is_deciding_false_without_decisions(self):
        result = run_with(SynchronousAdversary())
        assert not result.run.is_deciding()
        assert result.run.max_decision_clock() is None
