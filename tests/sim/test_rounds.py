"""Tests for the asynchronous-round analyzer."""

import pytest

from repro.adversary.base import CycleAdversary, DelayCycles
from repro.adversary.standard import SynchronousAdversary
from repro.errors import AnalysisError
from repro.sim.rounds import RoundAnalyzer, RoundBoundaries
from tests.conftest import make_commit_simulation


class TestRoundBoundaries:
    def test_round_lookup(self):
        boundaries = RoundBoundaries(pid=0, ends=[0, 4, 8, 16])
        assert boundaries.round_at_clock(1) == 1
        assert boundaries.round_at_clock(4) == 1
        assert boundaries.round_at_clock(5) == 2
        assert boundaries.round_at_clock(16) == 3

    def test_non_positive_clock_rejected(self):
        boundaries = RoundBoundaries(pid=0, ends=[0, 4])
        with pytest.raises(AnalysisError):
            boundaries.round_at_clock(0)

    def test_beyond_computed_raises(self):
        boundaries = RoundBoundaries(pid=0, ends=[0, 4])
        with pytest.raises(AnalysisError):
            boundaries.round_at_clock(5)


class TestRoundAnalyzer:
    def test_round_one_ends_at_clock_K(self):
        sim, _ = make_commit_simulation([1] * 5, K=4)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        for pid in range(5):
            assert analyzer.boundaries(pid).ends[1] == 4

    def test_rounds_are_monotone(self):
        sim, _ = make_commit_simulation([1] * 5, K=4)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        for pid in range(5):
            ends = analyzer.boundaries(pid).ends
            assert all(a < b for a, b in zip(ends, ends[1:]))

    def test_rounds_last_at_least_K_ticks(self):
        sim, _ = make_commit_simulation([1] * 5, K=4)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        for pid in range(5):
            ends = analyzer.boundaries(pid).ends
            for previous, current in zip(ends, ends[1:]):
                assert current - previous >= 4

    def test_decision_rounds_small_for_synchronous_runs(self):
        sim, _ = make_commit_simulation([1] * 5, K=4)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        rounds = analyzer.decision_rounds()
        assert all(r is not None for r in rounds.values())
        assert analyzer.max_decision_round() <= 14  # Theorem 10 budget

    def test_delay_stretches_rounds_not_round_count(self):
        # Under uniform delay D, ticks at decision grow with D while the
        # round in which decision happens stays small: the round end is
        # defined relative to receipt of the previous round's messages.
        def decision_stats(delay):
            adversary = CycleAdversary(
                delivery=DelayCycles(min_cycles=delay, max_cycles=delay)
            )
            sim, _ = make_commit_simulation([1] * 5, K=4, adversary=adversary)
            result = sim.run()
            analyzer = RoundAnalyzer(result.run)
            return result.run.max_decision_clock(), analyzer.max_decision_round()

        ticks_fast, rounds_fast = decision_stats(1)
        ticks_slow, rounds_slow = decision_stats(12)
        assert ticks_slow > 3 * ticks_fast
        assert rounds_slow <= rounds_fast + 4

    def test_crashed_senders_do_not_extend_rounds(self):
        from repro.adversary.base import CrashAt
        from repro.adversary.crash import ScheduledCrashAdversary

        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=4, cycle=2)]
        )
        sim, _ = make_commit_simulation([1] * 5, K=4, adversary=adversary)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        assert analyzer.max_decision_round() is not None

    def test_decision_round_matches_round_at_clock(self):
        sim, _ = make_commit_simulation([1] * 5, K=4)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        for pid, clock in result.run.decision_clocks.items():
            assert analyzer.decision_rounds()[pid] == analyzer.round_at_clock(
                pid, clock
            )
