"""Tests for envelopes and payload primitives."""

from repro.sim.message import (
    Envelope,
    EnvelopeFactory,
    MessageId,
    RawPayload,
    ReceivedPayload,
)


class TestEnvelope:
    def make(self, **overrides):
        defaults = dict(
            message_id=MessageId(1),
            sender=0,
            recipient=1,
            payloads=(RawPayload("x"),),
            send_event=5,
            send_clock=2,
        )
        defaults.update(overrides)
        return Envelope(**defaults)

    def test_undelivered_by_default(self):
        envelope = self.make()
        assert not envelope.delivered
        assert envelope.guaranteed

    def test_delivered_once_receive_event_set(self):
        envelope = self.make()
        envelope.receive_event = 9
        assert envelope.delivered

    def test_payload_packing(self):
        envelope = self.make(payloads=(RawPayload("a"), RawPayload("b")))
        assert [p.data for p in envelope.payloads] == ["a", "b"]


class TestEnvelopeFactory:
    def test_ids_are_unique_and_increasing(self):
        factory = EnvelopeFactory()
        ids = [
            factory.build(
                sender=0,
                recipient=1,
                payloads=(),
                send_event=i,
                send_clock=1,
            ).message_id
            for i in range(5)
        ]
        assert ids == sorted(set(ids))

    def test_metadata_threaded_through(self):
        factory = EnvelopeFactory()
        envelope = factory.build(
            sender=3,
            recipient=4,
            payloads=(RawPayload(1),),
            send_event=7,
            send_clock=2,
        )
        assert (envelope.sender, envelope.recipient) == (3, 4)
        assert (envelope.send_event, envelope.send_clock) == (7, 2)


class TestReceivedPayload:
    def test_defaults(self):
        entry = ReceivedPayload(
            sender=2, payload=RawPayload("y"), receive_clock=4
        )
        assert entry.message_id == MessageId(-1)
        assert entry.sender == 2
