"""Tests for wait conditions."""

import pytest

from repro.sim.board import BulletinBoard
from repro.sim.message import RawPayload, ReceivedPayload
from repro.sim.waits import (
    ClockAtLeast,
    MessageCount,
    Never,
    Predicate,
    WaitAll,
    WaitAny,
    WithTimeout,
)


def board_with(count: int, sender_offset: int = 0) -> BulletinBoard:
    board = BulletinBoard()
    for i in range(count):
        board.post(
            ReceivedPayload(
                sender=sender_offset + i, payload=RawPayload(i), receive_clock=1
            )
        )
    return board


ANY = lambda payload: True


class TestMessageCount:
    def test_satisfied_at_threshold(self):
        wait = MessageCount(ANY, 3)
        assert not wait.satisfied(board_with(2), clock=1)
        assert wait.satisfied(board_with(3), clock=1)

    def test_distinct_senders_counting(self):
        board = BulletinBoard()
        for _ in range(5):
            board.post(
                ReceivedPayload(sender=1, payload=RawPayload("x"), receive_clock=1)
            )
        assert not MessageCount(ANY, 2).satisfied(board, clock=1)
        assert MessageCount(ANY, 2, distinct_senders=False).satisfied(
            board, clock=1
        )

    def test_zero_count_is_immediately_satisfied(self):
        assert MessageCount(ANY, 0).satisfied(board_with(0), clock=1)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            MessageCount(ANY, -1)

    def test_keyed_counting_uses_index(self):
        from repro.core.messages import GoMessage

        board = BulletinBoard()
        board.post(
            ReceivedPayload(
                sender=0, payload=GoMessage(coins=(1,)), receive_clock=1
            )
        )
        wait = MessageCount(
            lambda p: isinstance(p, GoMessage), 1, key=("go",)
        )
        assert wait.satisfied(board, clock=1)
        assert not MessageCount(
            lambda p: isinstance(p, GoMessage), 2, key=("go",)
        ).satisfied(board, clock=1)


class TestClockAtLeast:
    def test_threshold(self):
        wait = ClockAtLeast(5)
        assert not wait.satisfied(board_with(0), clock=4)
        assert wait.satisfied(board_with(0), clock=5)


class TestPredicate:
    def test_wraps_callable(self):
        wait = Predicate(lambda board, clock: len(board) > 0 and clock > 2)
        assert not wait.satisfied(board_with(1), clock=1)
        assert wait.satisfied(board_with(1), clock=3)


class TestNever:
    def test_never_satisfied(self):
        assert not Never().satisfied(board_with(100), clock=10**9)


class TestWithTimeout:
    def test_inner_satisfaction_wins(self):
        wait = WithTimeout(MessageCount(ANY, 1), ticks=10)
        wait.arm(clock=0)
        assert wait.satisfied(board_with(1), clock=1)
        assert not wait.timed_out(board_with(1), clock=1)

    def test_deadline_fires(self):
        wait = WithTimeout(MessageCount(ANY, 99), ticks=5)
        wait.arm(clock=3)
        assert not wait.satisfied(board_with(0), clock=7)
        assert wait.satisfied(board_with(0), clock=8)
        assert wait.timed_out(board_with(0), clock=8)

    def test_deadline_fixed_at_first_arm(self):
        wait = WithTimeout(MessageCount(ANY, 99), ticks=5)
        wait.arm(clock=2)
        wait.arm(clock=100)  # re-arming must not move the deadline
        assert wait.deadline == 7

    def test_negative_ticks_rejected(self):
        with pytest.raises(ValueError):
            WithTimeout(Never(), ticks=-1)

    def test_unarmed_timeout_never_fires(self):
        wait = WithTimeout(MessageCount(ANY, 99), ticks=0)
        assert not wait.satisfied(board_with(0), clock=10**6)


class TestCombinators:
    def test_wait_all(self):
        wait = WaitAll((ClockAtLeast(3), MessageCount(ANY, 1)))
        assert not wait.satisfied(board_with(1), clock=2)
        assert not wait.satisfied(board_with(0), clock=5)
        assert wait.satisfied(board_with(1), clock=5)

    def test_wait_any(self):
        wait = WaitAny((ClockAtLeast(3), MessageCount(ANY, 1)))
        assert wait.satisfied(board_with(1), clock=1)
        assert wait.satisfied(board_with(0), clock=4)
        assert not wait.satisfied(board_with(0), clock=1)

    def test_operator_sugar(self):
        conjunction = ClockAtLeast(1) & ClockAtLeast(2)
        disjunction = ClockAtLeast(10) | ClockAtLeast(2)
        assert isinstance(conjunction, WaitAll)
        assert isinstance(disjunction, WaitAny)
        assert conjunction.satisfied(board_with(0), clock=2)
        assert disjunction.satisfied(board_with(0), clock=2)

    def test_arm_propagates(self):
        inner = WithTimeout(Never(), ticks=2)
        WaitAll((inner,)).arm(clock=4)
        assert inner.deadline == 6
