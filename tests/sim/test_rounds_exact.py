"""Exact, hand-computed asynchronous-round boundaries.

These tests pin the inductive definition down to specific numbers on
hand-built schedules, so any regression in the round analyzer shows up
as an off-by-one rather than a vague statistical drift.

Setup: n = 2, K = 2.  Processor 0 broadcasts one message at its first
step and then idles; processor 1 idles until the scripted delivery.

Definition recap: round 1 ends at clock K; round r > 1 ends at the later
of (end_{r-1} + K) and (receipt of the last round-(r-1) message + K).
"""

from repro.adversary.scripted import ScriptedAdversary
from repro.sim.decisions import StepDecision
from repro.sim.message import MessageId, RawPayload
from repro.sim.process import Program
from repro.sim.rounds import RoundAnalyzer
from repro.sim.scheduler import Simulation
from repro.sim.waits import ClockAtLeast


class OneShotSender(Program):
    """Broadcasts once at a chosen clock, then idles forever."""

    def __init__(self, pid, n, send_at_clock=1):
        super().__init__(pid, n)
        self.send_at_clock = send_at_clock

    def run(self):
        if self.send_at_clock > 1:
            yield ClockAtLeast(self.send_at_clock)
        self.broadcast(RawPayload(("ping", self.pid)))
        yield ClockAtLeast(10**9)


class Idler(Program):
    def run(self):
        yield ClockAtLeast(10**9)


def run_schedule(programs, decisions, K=2):
    adversary = ScriptedAdversary(decisions)
    sim = Simulation(
        programs,
        adversary,
        K=K,
        t=0,
        max_steps=len(decisions),
    )
    return sim.run().run


class TestExactBoundaries:
    def test_receipt_extends_the_following_round(self):
        # p0 sends m at clock 1 (its round 1).  p1 receives m at clock 5.
        # p1's round 2 must therefore end at max(2 + 2, 5 + 2) = 7,
        # and its round 3 at 7 + 2 = 9.
        programs = [OneShotSender(0, 2), Idler(1, 2)]
        decisions = [StepDecision(pid=0)]
        decisions += [StepDecision(pid=1)] * 4  # p1 clocks 1..4, no delivery
        decisions += [StepDecision(pid=1, deliver=(MessageId(0),))]  # clock 5
        # Let both run on a bit so later boundaries are computable.
        for _ in range(6):
            decisions += [StepDecision(pid=0), StepDecision(pid=1)]
        run = run_schedule(programs, decisions)
        analyzer = RoundAnalyzer(run)
        p1 = analyzer.boundaries(1).ends
        assert p1[1] == 2  # round 1 ends at clock K
        assert p1[2] == 7  # stretched by the receipt at clock 5
        assert p1[3] == 9
        # p0 heard nothing: pure K-spaced rounds.
        p0 = analyzer.boundaries(0).ends
        assert p0[1:4] == [2, 4, 6]

    def test_prompt_receipt_does_not_stretch(self):
        # p1 receives m at clock 2: max(2 + 2, 2 + 2) = 4 — no stretch.
        programs = [OneShotSender(0, 2), Idler(1, 2)]
        decisions = [StepDecision(pid=0)]
        decisions += [StepDecision(pid=1)]  # clock 1
        decisions += [StepDecision(pid=1, deliver=(MessageId(0),))]  # clock 2
        for _ in range(5):
            decisions += [StepDecision(pid=0), StepDecision(pid=1)]
        run = run_schedule(programs, decisions)
        analyzer = RoundAnalyzer(run)
        assert analyzer.boundaries(1).ends[1:4] == [2, 4, 6]

    def test_round_two_message_extends_round_three(self):
        # p0 sends at its clock 3, i.e. in p0's round 2 (ends at 4).
        # p1 receives it at clock 9.  The receipt therefore extends p1's
        # round *3* (the round after the sender's), not round 2:
        #   round 2 ends at 4, round 3 ends at max(4 + 2, 9 + 2) = 11.
        programs = [OneShotSender(0, 2, send_at_clock=3), Idler(1, 2)]
        decisions = [StepDecision(pid=0)] * 3  # p0 clocks 1..3, sends at 3
        decisions += [StepDecision(pid=1)] * 8  # p1 clocks 1..8
        decisions += [StepDecision(pid=1, deliver=(MessageId(0),))]  # clock 9
        for _ in range(6):
            decisions += [StepDecision(pid=0), StepDecision(pid=1)]
        run = run_schedule(programs, decisions)
        analyzer = RoundAnalyzer(run)
        p1 = analyzer.boundaries(1).ends
        assert p1[1] == 2
        assert p1[2] == 4  # untouched: the message was not a round-1 send
        assert p1[3] == 11  # stretched by the round-2 message
        assert p1[4] == 13

    def test_crashed_senders_messages_do_not_stretch(self):
        # Same delivery at clock 5 as the first test, but the sender is
        # crashed afterwards: messages from faulty processors do not
        # extend rounds (the definition quantifies over nonfaulty q).
        from repro.sim.decisions import CrashDecision

        programs = [OneShotSender(0, 2), Idler(1, 2)]
        decisions = [StepDecision(pid=0)]
        decisions += [StepDecision(pid=1)] * 4
        decisions += [StepDecision(pid=1, deliver=(MessageId(0),))]
        decisions += [CrashDecision(pid=0)]
        decisions += [StepDecision(pid=1)] * 8
        run = run_schedule(programs, decisions)
        analyzer = RoundAnalyzer(run)
        assert analyzer.boundaries(1).ends[1:4] == [2, 4, 6]
