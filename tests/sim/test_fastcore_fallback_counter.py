"""The ``sim_fastcore_fallbacks_total`` counter (timing-model fallbacks).

The fused sweep only replicates whitelisted adversaries; anything else
(timing-model wraps included) silently falls back to the byte-identical
``FastSimulation`` path.  "Silently" must still be *counted*: the
counter pins down two regression guarantees —

* whitelisted (realistic, plan-compiled) trials NEVER increment it,
  even when an active telemetry registry forces them off the fused
  sweep (observer-driven fallbacks are deliberate, not a cliff);
* off-whitelist trials increment it once per trial, labelled by
  adversary class.
"""

import pytest

from repro.analysis.montecarlo import CommitTrialConfig
from repro.engine.seeds import MODEL_TIMING_STREAM, derive
from repro.faults.plan import FaultPlan
from repro.faults.sim_compile import compile_to_adversary
from repro.models import resolve_model, set_default_timing_model
from repro.sim.fastcore import (
    adversary_sweep_supported,
    fast_commit_trial,
    sweep_eligible,
)
from repro.telemetry import registry as telemetry

N, T, K = 5, 2, 4

COUNTER = "sim_fastcore_fallbacks_total"


@pytest.fixture
def metrics():
    registry = telemetry.enable_telemetry()
    registry.reset()
    yield registry
    registry.reset()
    telemetry.disable_telemetry()


@pytest.fixture(autouse=True)
def _reset_ambient_model():
    set_default_timing_model(None)
    yield
    set_default_timing_model(None)


def _realistic_config():
    return CommitTrialConfig(
        votes=[1] * N,
        adversary_factory=lambda seed: compile_to_adversary(
            FaultPlan.random(n=N, t=T, seed=seed, K=K), K=K
        ),
        t=T,
        K=K,
        max_steps=4_000,
    )


def _model_config(model_name):
    model = resolve_model(model_name)
    return CommitTrialConfig(
        votes=[1] * N,
        adversary_factory=lambda seed: model.compile_plan(
            FaultPlan.random(n=N, t=T, seed=seed, K=K),
            K=K,
            seed=derive(seed, MODEL_TIMING_STREAM),
        ),
        t=T,
        K=K,
        max_steps=4_000,
    )


def _counter_total(registry):
    snapshot = registry.snapshot()
    if COUNTER not in snapshot:
        return 0
    return sum(s["value"] for s in snapshot[COUNTER]["samples"])


class TestWhitelistedNeverCounted:
    def test_plan_compiled_adversary_is_whitelisted(self):
        adversary = _realistic_config().adversary_factory(0)
        assert adversary_sweep_supported(adversary)

    def test_whitelisted_trials_never_increment(self, metrics):
        config = _realistic_config()
        for seed in range(5):
            fast_commit_trial(config, seed)
        assert _counter_total(metrics) == 0
        assert COUNTER not in metrics.snapshot()

    def test_observer_fallback_is_not_a_whitelist_fallback(self, metrics):
        # The active registry itself forces these trials off the fused
        # sweep — deliberately, and deliberately uncounted.
        adversary = _realistic_config().adversary_factory(0)
        assert adversary_sweep_supported(adversary)
        assert not sweep_eligible(adversary)


class TestOffWhitelistCounted:
    @pytest.mark.parametrize(
        "model_name", ["granular", "random-async", "round-closed"]
    )
    def test_model_adversaries_counted_per_trial(self, metrics, model_name):
        config = _model_config(model_name)
        trials = 3
        for seed in range(trials):
            fast_commit_trial(config, seed)
        assert _counter_total(metrics) == trials
        [sample] = metrics.snapshot()[COUNTER]["samples"]
        assert sample["labels"] == {"adversary": "CycleAdversary"}

    def test_disabled_telemetry_records_nothing(self):
        assert not telemetry.enabled()
        config = _model_config("granular")
        fast_commit_trial(config, 0)
        assert not telemetry.enabled()
