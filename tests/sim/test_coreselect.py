"""Tests for the execution-core selection knobs (repro.sim.coreselect)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.coreselect import (
    CORE_NAMES,
    core_from_env,
    make_simulation,
    numpy_allowed,
    resolve_sim_core,
    set_default_sim_core,
    simulation_class,
)
from repro.sim.fastcore import FastSimulation
from repro.sim.scheduler import Simulation


@pytest.fixture(autouse=True)
def _clear_override():
    """Keep the process-wide --sim-core override from leaking."""
    set_default_sim_core(None)
    yield
    set_default_sim_core(None)


class TestCoreFromEnv:
    def test_unset_yields_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        assert core_from_env() == "reference"
        assert core_from_env(default="fast") == "fast"

    def test_blank_yields_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "   ")
        assert core_from_env() == "reference"

    @pytest.mark.parametrize("raw", ["fast", "FAST", "  Fast  "])
    def test_valid_values_case_insensitive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_CORE", raw)
        assert core_from_env() == "fast"

    @pytest.mark.parametrize("raw", ["turbo", "0", "reference,fast", "tru"])
    def test_unknown_value_raises_naming_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_CORE", raw)
        with pytest.raises(ConfigurationError) as excinfo:
            core_from_env()
        message = str(excinfo.value)
        assert "REPRO_SIM_CORE" in message
        assert repr(raw) in message

    def test_custom_variable_name_in_error(self, monkeypatch):
        monkeypatch.setenv("OTHER_CORE", "bogus")
        with pytest.raises(ConfigurationError, match="OTHER_CORE"):
            core_from_env(name="OTHER_CORE")


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        assert resolve_sim_core() == "reference"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")
        assert resolve_sim_core() == "fast"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")
        set_default_sim_core("reference")
        assert resolve_sim_core() == "reference"

    def test_explicit_beats_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        set_default_sim_core("reference")
        assert resolve_sim_core("fast") == "fast"

    def test_explicit_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="sim core"):
            resolve_sim_core("turbo")

    def test_override_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="sim core"):
            set_default_sim_core("turbo")

    def test_clearing_override_restores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CORE", "fast")
        set_default_sim_core("reference")
        set_default_sim_core(None)
        assert resolve_sim_core() == "fast"


class TestSimulationClass:
    def test_reference_maps_to_simulation(self):
        assert simulation_class("reference") is Simulation

    def test_fast_maps_to_fast_simulation(self):
        cls = simulation_class("fast")
        assert cls is FastSimulation
        assert issubclass(cls, Simulation)

    def test_core_names_cover_both(self):
        assert CORE_NAMES == ("reference", "fast")

    def test_make_simulation_builds_on_resolved_core(self):
        from repro.adversary.standard import SynchronousAdversary
        from repro.core.commit import CommitProgram

        programs = [
            CommitProgram(pid=pid, n=3, t=1, initial_vote=1, K=2)
            for pid in range(3)
        ]
        simulation = make_simulation(
            programs=programs,
            adversary=SynchronousAdversary(seed=0),
            K=2,
            t=1,
            seed=0,
            core="fast",
        )
        assert type(simulation) is FastSimulation


class TestNumpyAllowed:
    def test_unset_and_blank_allow(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_NUMPY", raising=False)
        assert numpy_allowed() is True
        monkeypatch.setenv("REPRO_SIM_NUMPY", "  ")
        assert numpy_allowed() is True

    @pytest.mark.parametrize("raw", ["1", "true", "ON", " yes "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_NUMPY", raw)
        assert numpy_allowed() is True

    @pytest.mark.parametrize("raw", ["0", "false", "OFF", " no "])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SIM_NUMPY", raw)
        assert numpy_allowed() is False

    def test_junk_raises_naming_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_NUMPY", "maybe")
        with pytest.raises(ConfigurationError, match="REPRO_SIM_NUMPY"):
            numpy_allowed()
