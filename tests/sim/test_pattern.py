"""Tests for the adversary's pattern view."""

from repro.adversary.standard import SynchronousAdversary
from repro.sim.decisions import CrashDecision, StepDecision
from tests.conftest import make_commit_simulation


class TestPatternView:
    def make(self):
        sim, _ = make_commit_simulation([1] * 3, t=1)
        return sim

    def test_static_parameters(self):
        sim = self.make()
        view = sim.view
        assert view.n == 3
        assert view.t == 1
        assert view.K == 4

    def test_event_count_tracks_events(self):
        sim = self.make()
        assert sim.view.event_count == 0
        sim.apply(StepDecision(pid=0))
        assert sim.view.event_count == 1

    def test_alive_and_crashed(self):
        sim = self.make()
        assert sim.view.alive() == [0, 1, 2]
        sim.apply(CrashDecision(pid=1))
        assert sim.view.alive() == [0, 2]
        assert sim.view.crashed() == frozenset({1})

    def test_pending_ids_oldest_first(self):
        sim = self.make()
        sim.apply(StepDecision(pid=0))  # coordinator fans out GO
        ids = sim.view.pending_ids(1)
        assert ids == sorted(ids)

    def test_steps_between_counts_max_processor_steps(self):
        sim = self.make()
        for _ in range(2):
            for pid in range(3):
                sim.apply(StepDecision(pid=pid))
        # Between event 0 and event 5 (exclusive bounds semantics of the
        # underlying cumulative counts): each processor stepped at most
        # twice in the window.
        assert sim.max_steps_between(0, 6) <= 2

    def test_view_is_contents_free(self):
        sim = self.make()
        sim.apply(StepDecision(pid=0))
        for pending in sim.view.pending(1):
            assert not hasattr(pending, "payloads")
        for entry in sim.view.history():
            assert not hasattr(entry, "payloads")
