"""Golden cross-core tests: the fast core must match the reference.

Two layers of contract, matching the two layers of the fast core:

* :class:`FastSimulation` produces byte-identical runs — checked as
  ``Run`` equality *and* equality of the serialized run-trace records
  (:func:`repro.telemetry.runio.run_to_records`), which covers events,
  envelopes, decisions, and pattern histories;
* the sweep path of :func:`fast_commit_trial` produces metrics equal
  (as Python objects) to the reference trial runner's.
"""

import pytest

from repro.adversary.base import CrashAt, CycleAdversary, DeliverAll
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.scripted import ScriptedAdversary
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_trial
from repro.core.commit import CommitProgram
from repro.faults.plan import FaultPlan
from repro.faults.sim_compile import compile_to_adversary
from repro.sim.coreselect import set_default_sim_core
from repro.sim.fastcore import FastSimulation, fast_commit_trial, sweep_eligible
from repro.sim.scheduler import Simulation
from repro.telemetry.runio import run_to_records


def _programs(votes, K=4, t=None):
    n = len(votes)
    if t is None:
        t = (n - 1) // 2
    return [
        CommitProgram(pid=pid, n=n, t=t, initial_vote=vote, K=K)
        for pid, vote in enumerate(votes)
    ]


def _run(sim_class, votes, adversary, K=4, t=None, seed=0, max_steps=50_000):
    n = len(votes)
    if t is None:
        t = (n - 1) // 2
    simulation = sim_class(
        programs=_programs(votes, K=K, t=t),
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation.run()

def assert_byte_identical(votes, adversary_factory, K=4, seed=0, **kwargs):
    """Run both cores from fresh adversaries; require identical runs."""
    reference = _run(
        Simulation, votes, adversary_factory(), K=K, seed=seed, **kwargs
    )
    fast = _run(
        FastSimulation, votes, adversary_factory(), K=K, seed=seed, **kwargs
    )
    assert fast.run == reference.run
    assert run_to_records(fast.run) == run_to_records(reference.run)
    assert fast.terminated == reference.terminated
    assert fast.run.decisions == reference.run.decisions
    return reference, fast


class TestFastSimulationGoldenTraces:
    @pytest.mark.parametrize("seed", [0, 1, 7, 23])
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: SynchronousAdversary(seed=seed),
            lambda seed: OnTimeAdversary(K=4, seed=seed),
            lambda seed: LateMessageAdversary(K=4, seed=seed),
        ],
        ids=["synchronous", "ontime", "late"],
    )
    def test_standard_adversaries(self, factory, seed):
        assert_byte_identical(
            [1, 1, 0, 1, 1], lambda: factory(seed), seed=seed
        )

    def test_all_commit_votes(self):
        assert_byte_identical(
            [1] * 7, lambda: OnTimeAdversary(K=4, seed=3), seed=3
        )

    def test_crash_plan(self):
        assert_byte_identical(
            [1, 1, 1, 1, 1],
            lambda: ScheduledCrashAdversary(
                [CrashAt(cycle=2, pid=1), CrashAt(cycle=4, pid=3)], seed=5
            ),
            seed=5,
        )

    def test_random_adversary(self):
        assert_byte_identical(
            [1, 0, 1, 1, 0],
            lambda: RandomAdversary(seed=11, deliver_probability=0.6),
            seed=11,
        )

    @pytest.mark.parametrize("plan_seed", [0, 4, 9])
    def test_fault_plan_adversary(self, plan_seed):
        plan = FaultPlan.random(n=5, t=2, seed=plan_seed, K=4)
        assert_byte_identical(
            [1, 1, 1, 0, 1],
            lambda: compile_to_adversary(plan, K=4),
            seed=plan_seed,
            max_steps=20_000,
        )

    def test_scripted_prefix_replay(self):
        # Record a schedule on the reference core, then replay it as a
        # scripted prefix on both cores — the campaign's replay shape.
        adversary = OnTimeAdversary(K=4, seed=2)
        simulation = Simulation(
            programs=_programs([1, 1, 1, 1, 1]),
            adversary=adversary,
            K=4,
            t=2,
            seed=2,
        )
        schedule = []
        while not simulation.all_nonfaulty_done() and len(schedule) < 40:
            decision = simulation.adversary.decide(simulation.view)
            schedule.append(decision)
            simulation.apply(decision)

        def scripted():
            return ScriptedAdversary(
                tuple(schedule),
                then=CycleAdversary(seed=2, delivery=DeliverAll()),
            )

        assert_byte_identical([1, 1, 1, 1, 1], scripted, seed=2)

    def test_warm_late_cache_matches_cold(self):
        reference, fast = assert_byte_identical(
            [1, 1, 1, 1, 1, 1, 1],
            lambda: LateMessageAdversary(K=3, seed=6),
            K=3,
            seed=6,
        )
        assert fast.run.late_messages() == reference.run.late_messages()
        assert fast.run.is_on_time() == reference.run.is_on_time()
        assert [
            fast.run.is_late(env) for env in fast.run.envelopes.values()
        ] == [
            reference.run.is_late(env)
            for env in reference.run.envelopes.values()
        ]


class TestSweepTrials:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: SynchronousAdversary(seed=seed),
            lambda seed: OnTimeAdversary(K=4, seed=seed),
            lambda seed: LateMessageAdversary(K=4, seed=seed),
        ],
        ids=["synchronous", "ontime", "late"],
    )
    def test_metrics_equal_reference(self, factory):
        config = CommitTrialConfig(
            votes=[1, 1, 0, 1, 1, 1, 0], adversary_factory=factory, K=4
        )
        for seed in range(8):
            assert fast_commit_trial(config, seed) == run_commit_trial(
                config, seed
            )

    def test_sweep_with_crashes(self):
        config = CommitTrialConfig(
            votes=[1] * 7,
            adversary_factory=lambda seed: OnTimeAdversary(
                K=4,
                seed=seed,
                crash_plan=[CrashAt(cycle=2, pid=seed % 7)],
            ),
            K=4,
        )
        for seed in range(6):
            metrics = fast_commit_trial(config, seed)
            assert metrics == run_commit_trial(config, seed)
            assert metrics.crashes == 1

    def test_sweep_horizon_nontermination(self):
        config = CommitTrialConfig(
            votes=[1] * 5,
            adversary_factory=lambda seed: OnTimeAdversary(K=4, seed=seed),
            K=4,
            max_steps=30,
        )
        for seed in range(4):
            metrics = fast_commit_trial(config, seed)
            assert metrics == run_commit_trial(config, seed)
            assert not metrics.terminated

    def test_fallback_for_non_whitelisted_adversary(self):
        # RandomAdversary is not a CycleAdversary: the sweep must refuse
        # it and the FastSimulation fallback must still match.
        assert not sweep_eligible(RandomAdversary(seed=0))
        config = CommitTrialConfig(
            votes=[1, 1, 1, 0, 1],
            adversary_factory=lambda seed: RandomAdversary(seed=seed),
            K=4,
        )
        for seed in range(4):
            assert fast_commit_trial(config, seed) == run_commit_trial(
                config, seed
            )

    def test_consumed_adversary_not_sweep_eligible(self):
        adversary = OnTimeAdversary(K=4, seed=0)
        assert sweep_eligible(adversary)
        _run(Simulation, [1, 1, 1], adversary, max_steps=10)
        assert not sweep_eligible(adversary)


class TestWholePipelinesAcrossCores:
    @pytest.fixture(autouse=True)
    def _clear_override(self):
        set_default_sim_core(None)
        yield
        set_default_sim_core(None)

    def _with_core(self, core, fn):
        set_default_sim_core(core)
        try:
            return fn()
        finally:
            set_default_sim_core(None)

    def test_campaign_reports_identical(self):
        from repro.faults.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(n=4, plans=6, tracks=("sim",), max_steps=8_000)
        reference = self._with_core(
            "reference", lambda: run_campaign(config)
        )
        fast = self._with_core("fast", lambda: run_campaign(config))
        assert fast == reference

    def test_mc_exploration_reports_identical(self):
        from repro.mc import MCConfig, explore

        config = MCConfig(
            n=3, t=1, K=2, max_cycles=5, crash_budget=1, votes=(1, 1, 0)
        )
        reference = self._with_core(
            "reference", lambda: explore(config).to_dict()
        )
        fast = self._with_core("fast", lambda: explore(config).to_dict())
        assert fast == reference

    def test_core_differential_finds_nothing(self):
        from repro.counterexample import run_core_differential
        from repro.faults.campaign import CampaignConfig

        config = CampaignConfig(n=4, plans=8, max_steps=8_000)
        report = run_core_differential(config)
        assert report["summary"]["findings"] == 0
        assert report["summary"]["events_compared"] > 0
