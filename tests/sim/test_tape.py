"""Tests for the random tapes (the collection F)."""

import pytest

from repro.errors import TapeExhaustedError
from repro.sim.tape import RandomTape, TapeCollection


class TestRandomTape:
    def test_values_lie_in_unit_interval(self):
        tape = RandomTape(seed=1)
        for _ in range(100):
            assert 0.0 <= tape.next_step_value() < 1.0

    def test_same_seed_same_sequence(self):
        a = RandomTape(seed=42)
        b = RandomTape(seed=42)
        assert [a.next_step_value() for _ in range(50)] == [
            b.next_step_value() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = RandomTape(seed=1)
        b = RandomTape(seed=2)
        assert [a.next_step_value() for _ in range(10)] != [
            b.next_step_value() for _ in range(10)
        ]

    def test_position_advances(self):
        tape = RandomTape(seed=0)
        assert tape.position == 0
        tape.next_step_value()
        assert tape.position == 1

    def test_peek_does_not_consume(self):
        tape = RandomTape(seed=3)
        value = tape.peek(5)
        assert tape.position == 0
        for _ in range(5):
            tape.next_step_value()
        assert tape.next_step_value() == value

    def test_infinite_tape_reports_no_length(self):
        assert RandomTape(seed=0).length is None

    def test_finite_tape_from_values(self):
        tape = RandomTape.from_values([0.25, 0.5])
        assert tape.length == 2
        assert tape.next_step_value() == 0.25
        assert tape.next_step_value() == 0.5
        with pytest.raises(TapeExhaustedError):
            tape.next_step_value()

    def test_finite_tape_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            RandomTape.from_values([1.5])
        with pytest.raises(ValueError):
            RandomTape.from_values([-0.1])

    def test_flip_before_first_step_rejected(self):
        tape = RandomTape(seed=0)
        with pytest.raises(TapeExhaustedError):
            tape.flip(1)

    def test_flip_returns_bits(self):
        tape = RandomTape(seed=7)
        tape.next_step_value()
        bits = tape.flip(64)
        assert len(bits) == 64
        assert set(bits) <= {0, 1}

    def test_flip_deterministic_per_step(self):
        a = RandomTape(seed=9)
        b = RandomTape(seed=9)
        a.next_step_value()
        b.next_step_value()
        assert a.flip(32) == b.flip(32)

    def test_flip_bits_vary_across_steps(self):
        tape = RandomTape(seed=11)
        tape.next_step_value()
        first = tape.flip(64)
        tape.next_step_value()
        second = tape.flip(64)
        assert first != second

    def test_successive_flips_consume_distinct_bits(self):
        tape = RandomTape(seed=13)
        tape.next_step_value()
        first = tape.flip(1000)
        second = tape.flip(1000)
        # Overwhelmingly unlikely to coincide if truly distinct draws.
        assert first != second

    def test_per_step_bit_budget_enforced(self):
        tape = RandomTape(seed=5)
        tape.next_step_value()
        tape.flip(4096)
        with pytest.raises(TapeExhaustedError):
            tape.flip(1)

    def test_budget_resets_each_step(self):
        tape = RandomTape(seed=5)
        tape.next_step_value()
        tape.flip(4096)
        tape.next_step_value()
        assert len(tape.flip(10)) == 10

    def test_negative_flip_rejected(self):
        tape = RandomTape(seed=0)
        tape.next_step_value()
        with pytest.raises(ValueError):
            tape.flip(-1)


class TestTapeCollection:
    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            TapeCollection(0)

    def test_len_and_iter(self):
        tapes = TapeCollection(4, master_seed=1)
        assert len(tapes) == 4
        assert len(list(tapes)) == 4

    def test_per_processor_streams_are_decorrelated(self):
        tapes = TapeCollection(3, master_seed=0)
        streams = [
            [tapes.tape(pid).next_step_value() for _ in range(20)]
            for pid in range(3)
        ]
        assert streams[0] != streams[1]
        assert streams[1] != streams[2]

    def test_reproducible_from_master_seed(self):
        a = TapeCollection(3, master_seed=99)
        b = TapeCollection(3, master_seed=99)
        for pid in range(3):
            assert a.tape(pid).peek(10) == b.tape(pid).peek(10)

    def test_from_tapes_wraps_explicit_tapes(self):
        explicit = [RandomTape.from_values([0.1]), RandomTape.from_values([0.9])]
        tapes = TapeCollection.from_tapes(explicit)
        assert len(tapes) == 2
        assert tapes.tape(1).next_step_value() == 0.9

    def test_from_tapes_rejects_empty(self):
        with pytest.raises(ValueError):
            TapeCollection.from_tapes([])
