"""Tests for the simulation scheduler."""

import pytest

from repro.adversary.scripted import FunctionAdversary, ScriptedAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.errors import ConfigurationError, SchedulingError
from repro.sim.decisions import CrashDecision, StepDecision
from repro.sim.message import RawPayload
from repro.sim.process import Program
from repro.sim.scheduler import Outcome, Simulation
from repro.sim.waits import ClockAtLeast, MessageCount
from repro.types import ProcessStatus


class Chatter(Program):
    """Broadcasts a greeting, waits to hear from everyone, returns."""

    def run(self):
        self.broadcast(RawPayload(("hi", self.pid)))
        yield MessageCount(lambda p: True, self.n)
        return "done"


class Sleeper(Program):
    """Never finishes."""

    def run(self):
        yield ClockAtLeast(10**12)


def chatters(n: int) -> list[Chatter]:
    return [Chatter(pid, n) for pid in range(n)]


class TestSimulationConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Simulation([], SynchronousAdversary(), K=4, t=0)

    def test_rejects_misordered_pids(self):
        programs = [Chatter(1, 2), Chatter(0, 2)]
        with pytest.raises(ConfigurationError):
            Simulation(programs, SynchronousAdversary(), K=4, t=0)

    def test_rejects_bad_K(self):
        with pytest.raises(ConfigurationError):
            Simulation(chatters(2), SynchronousAdversary(), K=0, t=0)

    def test_rejects_bad_t(self):
        with pytest.raises(ConfigurationError):
            Simulation(chatters(2), SynchronousAdversary(), K=4, t=2)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            Simulation(chatters(2), SynchronousAdversary(), K=4, t=0, max_steps=0)


class TestRunLoop:
    def test_terminates_when_all_return(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        result = sim.run()
        assert result.outcome is Outcome.TERMINATED
        assert all(
            status is ProcessStatus.RETURNED
            for status in result.run.statuses.values()
        )
        assert all(out == "done" for out in result.run.outputs.values())

    def test_horizon_reached_for_blocked_programs(self):
        programs = [Sleeper(pid, 2) for pid in range(2)]
        sim = Simulation(
            programs, SynchronousAdversary(), K=4, t=0, max_steps=50
        )
        result = sim.run()
        assert result.outcome is Outcome.HORIZON
        assert result.run.event_count == 50

    def test_deterministic_given_seeds(self):
        def run_once():
            sim = Simulation(
                chatters(3), SynchronousAdversary(seed=5), K=4, t=1, seed=9
            )
            result = sim.run()
            return [
                (e.index, e.kind, e.actor, e.delivered, e.sent)
                for e in result.run.events
            ]

        assert run_once() == run_once()

    def test_crash_decision_marks_processor(self):
        script = [CrashDecision(pid=1)]
        adversary = ScriptedAdversary(script, then=SynchronousAdversary())
        sim = Simulation(chatters(3), adversary, K=4, t=1, max_steps=200)
        result = sim.run()
        assert result.run.statuses[1] is ProcessStatus.CRASHED
        assert 1 in result.run.faulty()

    def test_crashing_twice_rejected(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(CrashDecision(pid=1))
        with pytest.raises(SchedulingError):
            sim.apply(CrashDecision(pid=1))

    def test_stepping_crashed_processor_rejected(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(CrashDecision(pid=0))
        with pytest.raises(SchedulingError):
            sim.apply(StepDecision(pid=0))

    def test_delivering_unknown_message_rejected(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        with pytest.raises(SchedulingError):
            sim.apply(StepDecision(pid=0, deliver=(999,)))

    def test_guaranteed_flag_cleared_on_crash_after_final_send(self):
        # Step processor 0 (it broadcasts), then crash it: the envelopes
        # from its final (only) step lose their guarantee.
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(StepDecision(pid=0))
        sim.apply(CrashDecision(pid=0))
        pending = [env for buffer in sim.buffers for env in buffer]
        from_zero = [env for env in pending if env.sender == 0]
        assert from_zero and all(not env.guaranteed for env in from_zero)

    def test_envelope_packing_one_per_recipient_per_step(self):
        class DoubleSender(Program):
            def run(self):
                self.send(1, RawPayload("a"))
                self.send(1, RawPayload("b"))
                yield ClockAtLeast(10**12)

        programs = [DoubleSender(0, 2), Sleeper(1, 2)]
        sim = Simulation(programs, SynchronousAdversary(), K=4, t=0)
        sim.apply(StepDecision(pid=0))
        envelopes = list(sim.buffers[1])
        assert len(envelopes) == 1
        assert [p.data for p in envelopes[0].payloads] == ["a", "b"]

    def test_function_adversary_drives_simulation(self):
        order = []

        def pick(view):
            pid = view.alive()[view.event_count % 3]
            order.append(pid)
            return StepDecision(pid=pid, deliver=tuple(view.pending_ids(pid)))

        sim = Simulation(chatters(3), FunctionAdversary(pick), K=4, t=1)
        result = sim.run()
        assert result.terminated
        assert order[:3] == [0, 1, 2]


class TestPatternQueries:
    def test_clock_visible_through_view(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(StepDecision(pid=2))
        assert sim.view.clock(2) == 1
        assert sim.view.clock(0) == 0

    def test_pending_metadata_hides_payloads(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(StepDecision(pid=0))
        pending = sim.view.pending(1)
        assert pending
        assert not hasattr(pending[0], "payloads")
        assert pending[0].sender == 0

    def test_history_records_pattern_only(self):
        sim = Simulation(chatters(3), SynchronousAdversary(), K=4, t=1)
        sim.apply(StepDecision(pid=0))
        entry = sim.view.history()[0]
        assert entry.actor == 0
        assert entry.kind == "step"
        assert {record.recipient for record in entry.sent} == {1, 2}
