"""Tests for per-processor message buffers."""

import pytest

from repro.errors import SchedulingError
from repro.sim.buffer import MessageBuffer
from repro.sim.message import Envelope, MessageId, RawPayload


def envelope(mid: int, sender: int = 0, recipient: int = 1) -> Envelope:
    return Envelope(
        message_id=MessageId(mid),
        sender=sender,
        recipient=recipient,
        payloads=(RawPayload(data=mid),),
        send_event=mid,
        send_clock=1,
    )


class TestMessageBuffer:
    def test_starts_empty(self):
        assert len(MessageBuffer()) == 0

    def test_add_and_contains(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1))
        assert MessageId(1) in buffer
        assert len(buffer) == 1

    def test_duplicate_add_rejected(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1))
        with pytest.raises(SchedulingError):
            buffer.add(envelope(1))

    def test_take_removes_and_returns(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1))
        buffer.add(envelope(2))
        taken = buffer.take([MessageId(1)])
        assert [e.message_id for e in taken] == [1]
        assert MessageId(1) not in buffer
        assert MessageId(2) in buffer

    def test_take_missing_raises(self):
        buffer = MessageBuffer()
        with pytest.raises(SchedulingError, match="not applicable"):
            buffer.take([MessageId(7)])

    def test_take_preserves_insertion_order(self):
        buffer = MessageBuffer()
        for mid in (3, 1, 2):
            buffer.add(envelope(mid))
        taken = buffer.take([MessageId(2), MessageId(3)])
        assert [e.message_id for e in taken] == [3, 2]

    def test_take_empty_is_noop(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1))
        assert buffer.take([]) == []
        assert len(buffer) == 1

    def test_peek_ids_oldest_first(self):
        buffer = MessageBuffer()
        for mid in (5, 2, 9):
            buffer.add(envelope(mid))
        assert buffer.peek_ids() == [5, 2, 9]

    def test_pending_from_filters_by_sender(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1, sender=0))
        buffer.add(envelope(2, sender=3))
        buffer.add(envelope(3, sender=0))
        assert [e.message_id for e in buffer.pending_from(0)] == [1, 3]

    def test_drop_removes_without_delivery(self):
        buffer = MessageBuffer()
        buffer.add(envelope(1))
        dropped = buffer.drop(MessageId(1))
        assert dropped.message_id == 1
        assert len(buffer) == 0

    def test_drop_missing_raises(self):
        with pytest.raises(SchedulingError):
            MessageBuffer().drop(MessageId(0))

    def test_iteration_yields_envelopes(self):
        buffer = MessageBuffer()
        buffer.add(envelope(4))
        assert [e.message_id for e in buffer] == [4]
