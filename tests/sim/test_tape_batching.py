"""Trace-pinning tests for the batched tape generator.

The tape's contract is that batching (and the optional numpy upgrade
for long tapes) is purely an implementation detail: the value stream
must be cell-for-cell the one ``random.Random(seed)`` produces, for
every seed, with or without numpy.
"""

import random

import pytest

from repro.errors import TapeExhaustedError
from repro.sim.tape import (
    _NUMPY_TAPE_MIN,
    RandomTape,
    TapeCollection,
    _numpy_tape_state,
)

#: Seeds straddling the numpy-eligibility boundary (2**32) plus a
#: TapeCollection-derived seed and the splitmix constant itself.
PIN_SEEDS = [
    0,
    1,
    7,
    2**32 - 1,
    2**32,
    2**32 + 9,
    2**40 + 123,
    0x9E3779B97F4A7C15,
    TapeCollection._derive_seed(42, 3),
]


class TestStreamPinning:
    @pytest.mark.parametrize("seed", PIN_SEEDS)
    def test_long_stream_matches_stdlib(self, seed):
        # Read far past _NUMPY_TAPE_MIN so eligible seeds actually take
        # the numpy path; the stream must not fork at the switch.
        count = _NUMPY_TAPE_MIN + 500
        tape = RandomTape(seed=seed)
        reference = random.Random(seed)
        expected = [reference.random() for _ in range(count)]
        assert [tape.next_step_value() for _ in range(count)] == expected

    @pytest.mark.parametrize("seed", [5, 2**32 + 5])
    def test_peek_then_read_matches_stdlib(self, seed):
        # Peeking materialises a prefix before the numpy upgrade; the
        # upgraded generator must fast-forward past it, not replay it.
        tape = RandomTape(seed=seed)
        reference = random.Random(seed)
        expected = [reference.random() for _ in range(_NUMPY_TAPE_MIN + 100)]
        assert tape.peek(10) == expected[10]
        values = [
            tape.next_step_value() for _ in range(_NUMPY_TAPE_MIN + 100)
        ]
        assert values == expected

    def test_numpy_and_fallback_streams_identical(self, monkeypatch):
        seed = 2**36 + 77
        count = _NUMPY_TAPE_MIN + 200
        with_numpy = RandomTape(seed=seed)
        allowed = [with_numpy.next_step_value() for _ in range(count)]
        monkeypatch.setenv("REPRO_SIM_NUMPY", "0")
        without_numpy = RandomTape(seed=seed)
        denied = [without_numpy.next_step_value() for _ in range(count)]
        assert allowed == denied

    def test_small_seed_never_uses_numpy(self):
        # One-word keys collapse to numpy's scalar seeding, which
        # diverges from CPython — such seeds must stay on the stdlib
        # path.
        assert _numpy_tape_state(12345) is None
        assert _numpy_tape_state(2**32 - 1) is None

    def test_flip_unchanged_by_batching(self):
        a = RandomTape(seed=2**33 + 1)
        b = random.Random(2**33 + 1)
        for _ in range(5):
            value = a.next_step_value()
            assert value == b.random()
            bits = a.flip(16)
            expander = random.Random(value.hex())
            assert bits == [expander.getrandbits(1) for _ in range(16)]


class TestFiniteTapesUnchanged:
    def test_finite_exhaustion_still_raises(self):
        tape = RandomTape.from_values([0.25, 0.5])
        tape.next_step_value()
        tape.next_step_value()
        with pytest.raises(TapeExhaustedError):
            tape.next_step_value()

    def test_finite_values_returned_verbatim(self):
        values = [0.125, 0.625, 0.875]
        tape = RandomTape.from_values(values)
        assert [tape.next_step_value() for _ in range(3)] == values
