"""Telemetry must not perturb the simulation (satellite: zero overhead).

Two guarantees pinned here:

* a run with telemetry enabled is *byte-identical* (as an exported JSONL
  trace) to the same seeded run with telemetry disabled — instrumentation
  only observes, it never changes scheduling, randomness, or payloads;
* a run with telemetry disabled leaves the default registry untouched —
  no metric families are created, nothing is counted.
"""

from repro.analysis.metrics import extract_metrics, metrics_from_run
from repro.core.api import run_commit
from repro.telemetry import registry as telemetry
from repro.telemetry.runio import export_run_jsonl


def _trace_bytes(tmp_path, label: str) -> bytes:
    outcome = run_commit([1, 1, 0, 1, 1], K=4, seed=7, max_steps=50_000)
    metrics = extract_metrics(outcome, programs=outcome.programs)
    assert metrics.consistent
    path = export_run_jsonl(outcome.run, tmp_path / f"{label}.jsonl")
    return path.read_bytes()


class TestDisabledTelemetry:
    def test_trace_byte_identical_with_and_without_telemetry(self, tmp_path):
        assert not telemetry.enabled()
        baseline = _trace_bytes(tmp_path, "disabled")
        telemetry.enable_telemetry()
        instrumented = _trace_bytes(tmp_path, "enabled")
        assert instrumented == baseline

    def test_disabled_run_leaves_registry_untouched(self, tmp_path):
        registry = telemetry.get_registry()
        assert not registry.enabled
        outcome = run_commit([1, 1, 1], K=4, seed=1)
        extract_metrics(outcome, programs=outcome.programs)
        metrics_from_run(outcome.run)
        export_run_jsonl(outcome.run, tmp_path / "t.jsonl")
        assert registry.metrics() == {}

    def test_enabled_run_populates_registry(self):
        registry = telemetry.enable_telemetry()
        outcome = run_commit([1, 1, 1], K=4, seed=1)
        extract_metrics(outcome, programs=outcome.programs)
        families = registry.metrics()
        assert "sim_events_total" in families
        assert "sim_payloads_sent_total" in families
        assert "agreement_stage_transitions_total" in families
        assert "commit_decisions_total" in families
        assert "analysis_runs_total" in families
        assert families["sim_events_total"].value(kind="step") > 0
        assert (
            families["commit_decisions_total"].value(decision="commit")
            == 3
        )
