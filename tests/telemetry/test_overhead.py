"""Observability must not perturb the simulation (zero overhead).

Guarantees pinned here:

* a run with telemetry enabled is *byte-identical* (as an exported JSONL
  trace) to the same seeded run with telemetry disabled — instrumentation
  only observes, it never changes scheduling, randomness, or payloads;
* the same holds for span tracing (:mod:`repro.trace`): recording spans
  of a run leaves the exported run trace byte-identical, because spans
  are derived post-hoc from the completed run;
* a run with telemetry disabled leaves the default registry untouched —
  no metric families are created, nothing is counted;
* a run with tracing disabled records nothing (the default recorder
  slot stays empty).
"""

from repro.analysis.metrics import extract_metrics, metrics_from_run
from repro.core.api import run_commit
from repro.telemetry import registry as telemetry
from repro.telemetry.runio import export_run_jsonl
from repro.trace import spans as trace_spans


def _trace_bytes(tmp_path, label: str) -> bytes:
    outcome = run_commit([1, 1, 0, 1, 1], K=4, seed=7, max_steps=50_000)
    metrics = extract_metrics(outcome, programs=outcome.programs)
    assert metrics.consistent
    path = export_run_jsonl(outcome.run, tmp_path / f"{label}.jsonl")
    return path.read_bytes()


class TestDisabledTelemetry:
    def test_trace_byte_identical_with_and_without_telemetry(self, tmp_path):
        assert not telemetry.enabled()
        baseline = _trace_bytes(tmp_path, "disabled")
        telemetry.enable_telemetry()
        instrumented = _trace_bytes(tmp_path, "enabled")
        assert instrumented == baseline

    def test_disabled_run_leaves_registry_untouched(self, tmp_path):
        registry = telemetry.get_registry()
        assert not registry.enabled
        outcome = run_commit([1, 1, 1], K=4, seed=1)
        extract_metrics(outcome, programs=outcome.programs)
        metrics_from_run(outcome.run)
        export_run_jsonl(outcome.run, tmp_path / "t.jsonl")
        assert registry.metrics() == {}

    def test_trace_byte_identical_with_and_without_span_tracing(
        self, tmp_path
    ):
        assert not trace_spans.tracing_enabled()
        baseline = _trace_bytes(tmp_path, "untraced")
        recorder = trace_spans.enable_tracing()
        try:
            traced = _trace_bytes(tmp_path, "traced")
        finally:
            trace_spans.disable_tracing()
        assert traced == baseline
        # The recorder did observe the run — it just never fed back in.
        counts = recorder.counts()
        assert counts["spans"] > 0
        assert counts["events"] > 0
        assert counts["edges"] > 0

    def test_disabled_tracing_records_nothing(self, tmp_path):
        assert trace_spans.active_recorder() is None
        _trace_bytes(tmp_path, "no-recorder")
        assert trace_spans.active_recorder() is None

    def test_enabled_run_populates_registry(self):
        registry = telemetry.enable_telemetry()
        outcome = run_commit([1, 1, 1], K=4, seed=1)
        extract_metrics(outcome, programs=outcome.programs)
        families = registry.metrics()
        assert "sim_events_total" in families
        assert "sim_payloads_sent_total" in families
        assert "agreement_stage_transitions_total" in families
        assert "commit_decisions_total" in families
        assert "analysis_runs_total" in families
        assert families["sim_events_total"].value(kind="step") > 0
        assert (
            families["commit_decisions_total"].value(decision="commit")
            == 3
        )
