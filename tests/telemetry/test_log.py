"""Tests for the ``repro`` logging channel."""

import io
import logging

import pytest

from repro.telemetry.log import (
    LOG_LEVELS,
    LOGGER_NAME,
    configure_logging,
    get_logger,
)


@pytest.fixture(autouse=True)
def _pristine_logger():
    """Strip our handlers and restore the level after each test."""
    logger = logging.getLogger(LOGGER_NAME)
    level = logger.level
    yield
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry_handler", False):
            logger.removeHandler(handler)
    logger.setLevel(level)


class TestGetLogger:
    def test_root_logger(self):
        assert get_logger().name == LOGGER_NAME

    def test_child_logger(self):
        assert get_logger("sim.scheduler").name == "repro.sim.scheduler"

    def test_already_qualified_name(self):
        assert get_logger("repro.core").name == "repro.core"


class TestConfigureLogging:
    def test_levels_cover_the_standard_names(self):
        assert set(LOG_LEVELS) == {
            "debug",
            "info",
            "warning",
            "error",
            "critical",
        }

    def test_writes_to_stream_at_level(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        get_logger("test").debug("hello from the test")
        assert "hello from the test" in stream.getvalue()
        assert "repro.test" in stream.getvalue()

    def test_below_level_is_suppressed(self):
        stream = io.StringIO()
        configure_logging("error", stream=stream)
        get_logger("test").warning("should not appear")
        assert stream.getvalue() == ""

    def test_idempotent_reconfiguration(self):
        logger = configure_logging("info")
        configure_logging("debug")
        ours = [
            h
            for h in logger.handlers
            if getattr(h, "_repro_telemetry_handler", False)
        ]
        assert len(ours) == 1
        assert logger.level == logging.DEBUG

    def test_numeric_level_accepted(self):
        logger = configure_logging(logging.INFO)
        assert logger.level == logging.INFO

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")
