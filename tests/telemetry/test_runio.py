"""JSONL trace round-trip tests (satellite: every CLI adversary)."""

import json

import pytest

from repro.analysis.metrics import metrics_from_run
from repro.cli import ADVERSARY_CHOICES, build_adversary
from repro.core.api import run_commit
from repro.errors import AnalysisError
from repro.telemetry.runio import (
    TRACE_SCHEMA,
    TRACE_VERSION,
    export_run_jsonl,
    import_run_jsonl,
    payload_from_dict,
    payload_to_dict,
    run_from_records,
    run_to_records,
)
from repro.telemetry.summary import run_counters


def _run_under(adversary_name: str):
    crashes = [3, 4] if adversary_name == "crash" else []
    adversary = build_adversary(adversary_name, K=4, seed=3, crashes=crashes)
    outcome = run_commit(
        [1, 1, 1, 1, 1], K=4, adversary=adversary, seed=3, max_steps=50_000
    )
    return outcome.run


class TestRoundTrip:
    @pytest.mark.parametrize("name", ADVERSARY_CHOICES)
    def test_metrics_identical_under_every_cli_adversary(self, name, tmp_path):
        run = _run_under(name)
        path = export_run_jsonl(run, tmp_path / f"{name}.jsonl")
        imported = import_run_jsonl(path)
        original = metrics_from_run(run, record=False)
        recovered = metrics_from_run(imported, record=False)
        assert recovered == original

    @pytest.mark.parametrize("name", ADVERSARY_CHOICES)
    def test_records_and_counters_identical(self, name, tmp_path):
        run = _run_under(name)
        path = export_run_jsonl(run, tmp_path / f"{name}.jsonl")
        imported = import_run_jsonl(path)
        # Re-exporting the imported run reproduces the records exactly,
        # and the per-phase counter bundle agrees too.
        assert run_to_records(imported) == run_to_records(run)
        assert run_counters(imported) == run_counters(run)

    def test_header_carries_schema_and_version(self, tmp_path):
        run = _run_under("synchronous")
        path = export_run_jsonl(run, tmp_path / "trace.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["record"] == "header"
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_VERSION


class TestPayloadCodec:
    def test_round_trip_every_payload_kind_in_a_run(self):
        run = _run_under("ontime")
        seen = set()
        for envelope in run.envelopes.values():
            for payload in envelope.payloads:
                seen.add(type(payload).__name__)
                assert payload_from_dict(payload_to_dict(payload)) == payload
        # the commit protocol exercises all four core message kinds
        assert {
            "GoMessage",
            "StageMessage",
            "VoteMessage",
            "DecidedMessage",
        } <= seen

    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError):
            payload_from_dict({"kind": "NoSuchPayload"})


class TestImportErrors:
    def test_empty_trace(self):
        with pytest.raises(AnalysisError, match="no header"):
            run_from_records([])

    def test_wrong_schema(self):
        with pytest.raises(AnalysisError, match="header"):
            run_from_records([{"record": "header", "schema": "other"}])

    def test_unsupported_version(self):
        with pytest.raises(AnalysisError, match="version"):
            run_from_records(
                [
                    {
                        "record": "header",
                        "schema": TRACE_SCHEMA,
                        "version": TRACE_VERSION + 1,
                    }
                ]
            )

    def test_truncated_trace(self, tmp_path):
        run = _run_under("synchronous")
        path = export_run_jsonl(run, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(AnalysisError, match="no final record"):
            import_run_jsonl(truncated)

    def test_unknown_record_type(self):
        header = {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "n": 3,
            "t": 1,
            "K": 4,
        }
        with pytest.raises(AnalysisError, match="unknown record"):
            run_from_records([header, {"record": "mystery"}])

    def test_malformed_record(self):
        header = {
            "record": "header",
            "schema": TRACE_SCHEMA,
            "version": TRACE_VERSION,
            "n": 3,
            "t": 1,
            "K": 4,
        }
        with pytest.raises(AnalysisError, match="malformed"):
            run_from_records([header, {"record": "event"}])

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"record": "header"\nnot json\n')
        with pytest.raises(AnalysisError, match="invalid JSON"):
            import_run_jsonl(path)
