"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import registry as telemetry
from repro.telemetry.registry import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    use_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("messages_total", "messages")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labels_are_separate_cells(self):
        registry = MetricsRegistry()
        counter = registry.counter("messages_total")
        counter.inc(kind="GoMessage")
        counter.inc(kind="GoMessage")
        counter.inc(kind="VoteMessage")
        assert counter.value(kind="GoMessage") == 2
        assert counter.value(kind="VoteMessage") == 1
        assert counter.value(kind="Other") == 0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(a="1", b="2")
        assert counter.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("c").inc(-1)

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc(100)
        assert counter.value() == 0


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("nodes")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        gauge = registry.gauge("g")
        gauge.set(9)
        assert gauge.value() == 0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("rounds", buckets=(1, 2, 4))
        for value in (0.5, 1, 1.5, 3, 100):
            histogram.observe(value)
        cell = histogram.cell()
        assert cell.count == 5
        assert cell.total == pytest.approx(106.0)
        # le=1 gets 0.5 and 1 (upper bounds inclusive); le=2 gets 1.5;
        # le=4 gets 3; 100 overflows into the implicit +Inf bucket.
        assert cell.bucket_counts == [2, 1, 1]

    def test_empty_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("h", buckets=())

    def test_time_context_manager(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds")
        with histogram.time():
            pass
        cell = histogram.cell()
        assert cell.count == 1
        assert cell.total >= 0

    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        assert histogram.cell() is None


class TestRegistry:
    def test_create_or_get_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ConfigurationError):
            registry.gauge("metric")

    def test_reset_drops_families(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.metrics() == {}

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(2, kind="x")
        registry.histogram("h", buckets=(1, 2)).observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {
            "type": "counter",
            "help": "help text",
            "samples": [{"labels": {"kind": "x"}, "value": 2.0}],
        }
        sample = snapshot["h"]["samples"][0]
        assert sample["count"] == 1
        assert sample["sum"] == pytest.approx(1.5)
        assert sample["buckets"] == {"1": 0, "2": 1}

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("msgs_total", "messages").inc(3, kind="go")
        registry.histogram("rounds", buckets=(1, 2)).observe(1.5)
        text = registry.render_prometheus()
        assert "# HELP msgs_total messages" in text
        assert "# TYPE msgs_total counter" in text
        assert 'msgs_total{kind="go"} 3' in text
        assert 'rounds_bucket{le="1"} 0' in text
        assert 'rounds_bucket{le="2"} 1' in text  # cumulative
        assert 'rounds_bucket{le="+Inf"} 1' in text
        assert "rounds_sum 1.5" in text
        assert "rounds_count 1" in text

    def test_prometheus_empty_registry(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestDefaultRegistry:
    def test_disabled_by_default(self):
        # The test fixture installs a fresh disabled default.
        assert not telemetry.enabled()
        assert telemetry.active_registry() is None

    def test_enable_disable(self):
        registry = telemetry.enable_telemetry()
        assert telemetry.enabled()
        assert telemetry.active_registry() is registry
        telemetry.disable_telemetry()
        assert not telemetry.enabled()

    def test_emitters_noop_when_disabled(self):
        telemetry.count("c")
        telemetry.observe("h", 1.0)
        telemetry.set_gauge("g", 1.0)
        assert telemetry.get_registry().metrics() == {}

    def test_emitters_record_when_enabled(self):
        registry = telemetry.enable_telemetry()
        telemetry.count("c", 2, kind="x")
        telemetry.observe("h", 3.0, buckets=COUNT_BUCKETS)
        telemetry.set_gauge("g", 7)
        assert registry.counter("c").value(kind="x") == 2
        assert registry.histogram("h").cell().count == 1
        assert registry.gauge("g").value() == 7

    def test_use_registry_swaps_and_restores(self):
        original = telemetry.get_registry()
        scratch = MetricsRegistry()
        with use_registry(scratch) as active:
            assert active is scratch
            assert telemetry.get_registry() is scratch
            telemetry.count("c")
        assert telemetry.get_registry() is original
        assert scratch.counter("c").value() == 1


class TestMetricKinds:
    def test_kinds(self):
        registry = MetricsRegistry()
        assert isinstance(registry.counter("a"), Counter)
        assert isinstance(registry.gauge("b"), Gauge)
        assert isinstance(registry.histogram("c"), Histogram)


class TestMergeSnapshot:
    """Edge cases of folding worker snapshots into a parent registry."""

    def test_registered_but_empty_histogram_survives_merge(self):
        # A worker that registered a family but never observed still
        # exports its bucket bounds; after the merge the parent must
        # hold the family with those bounds so later merges (from
        # workers that did observe) land in matching buckets.
        worker = MetricsRegistry()
        worker.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        merged = parent.metrics()["latency_seconds"]
        assert isinstance(merged, Histogram)
        assert merged.bounds == (0.1, 1.0)
        assert merged.samples() == {}

        busy = MetricsRegistry()
        busy.histogram(
            "latency_seconds", "latency", buckets=(0.1, 1.0)
        ).observe(0.5)
        parent.merge_snapshot(busy.snapshot())
        cell = parent.metrics()["latency_seconds"].cell()
        assert cell.count == 1
        assert cell.bucket_counts == [0, 1]

    def test_mismatched_bucket_bounds_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("latency_seconds", buckets=(0.1, 1.0))
        worker = MetricsRegistry()
        worker.histogram(
            "latency_seconds", buckets=(0.1, 1.0, 10.0)
        ).observe(5.0)
        with pytest.raises(ConfigurationError, match="do not match"):
            parent.merge_snapshot(worker.snapshot())

    def test_mismatched_bounds_rejected_even_without_samples(self):
        # The family-level bounds travel in the snapshot, so the
        # conflict is detectable before any observation arrives.
        parent = MetricsRegistry()
        parent.histogram("latency_seconds", buckets=(0.1, 1.0))
        worker = MetricsRegistry()
        worker.histogram("latency_seconds", buckets=(0.5,))
        with pytest.raises(ConfigurationError, match="do not match"):
            parent.merge_snapshot(worker.snapshot())

    def test_gauge_merge_is_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("depth").set(1.0)
        first = MetricsRegistry()
        first.gauge("depth").set(5.0)
        second = MetricsRegistry()
        second.gauge("depth").set(2.0)
        # Merge order decides, not magnitude: the chunk merged last is
        # the serial run's most recent ``set``.
        parent.merge_snapshot(first.snapshot())
        parent.merge_snapshot(second.snapshot())
        assert parent.gauge("depth").value() == 2.0

    def test_counter_and_histogram_cells_add(self):
        parent = MetricsRegistry()
        parent.counter("trials_total").inc(2, mode="serial")
        parent.histogram("cost", buckets=(1.0, 10.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.counter("trials_total").inc(3, mode="serial")
        worker.histogram("cost", buckets=(1.0, 10.0)).observe(4.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("trials_total").value(mode="serial") == 5
        cell = parent.metrics()["cost"].cell()
        assert cell.count == 2
        assert cell.bucket_counts == [1, 1]

    def test_unknown_metric_kind_rejected(self):
        parent = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="unknown kind"):
            parent.merge_snapshot(
                {"weird": {"type": "summary", "samples": []}}
            )
