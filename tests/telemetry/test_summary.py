"""Tests for per-phase counter bundles and the --json documents."""

import json

from repro.analysis.metrics import metrics_from_run
from repro.core.api import run_commit
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.runio import run_from_records
from repro.telemetry.summary import (
    EXPERIMENT_DOCUMENT_SCHEMA,
    RUN_DOCUMENT_SCHEMA,
    RUN_DOCUMENT_VERSION,
    experiment_document,
    record_run,
    run_commit_document,
    run_counters,
)


def _outcome(votes=(1, 1, 1, 1, 1), seed=0):
    return run_commit(list(votes), K=4, seed=seed, max_steps=50_000)


class TestRunCounters:
    def test_counter_bundle_shape(self):
        outcome = _outcome()
        counters = run_counters(outcome.run, programs=outcome.programs)
        messages = counters["messages"]
        assert messages["envelopes_sent"] == outcome.run.messages_sent()
        assert set(messages["sent_by_kind"]) >= {"GoMessage", "VoteMessage"}
        assert messages["late"] == 0
        assert counters["events"]["total"] == outcome.run.event_count
        assert counters["crashes"] == 0
        rounds = counters["rounds"]
        assert rounds["max_decision_round"] == outcome.decision_round
        assert len(rounds["decision_rounds"]) == 5
        agreement = counters["agreement"]
        assert agreement["stages"] >= 1
        assert set(agreement["coin_usage"]) == {"shared", "private"}

    def test_without_programs_no_agreement_section(self):
        outcome = _outcome()
        assert "agreement" not in run_counters(outcome.run)


class TestRecordRun:
    def test_populates_registry(self):
        outcome = _outcome()
        registry = MetricsRegistry()
        record_run(outcome.run, registry)
        families = registry.metrics()
        assert families["runs_recorded_total"].value() == 1
        sent = families["run_messages_sent_total"]
        counters = run_counters(outcome.run)
        for kind, count in counters["messages"]["sent_by_kind"].items():
            assert sent.value(kind=kind) == count
        assert families["run_decision_rounds"].cell().count == 1

    def test_disabled_registry_untouched(self):
        outcome = _outcome()
        registry = MetricsRegistry(enabled=False)
        record_run(outcome.run, registry)
        assert registry.metrics() == {}


class TestDocuments:
    def test_run_commit_document_round_trips(self):
        outcome = _outcome(seed=5)
        document = run_commit_document(
            outcome.run,
            params={"seed": 5},
            programs=outcome.programs,
        )
        assert document["schema"] == RUN_DOCUMENT_SCHEMA
        assert document["version"] == RUN_DOCUMENT_VERSION
        # the document must be pure JSON
        encoded = json.dumps(document, sort_keys=True)
        decoded = json.loads(encoded)
        run = run_from_records(decoded["trace"]["records"])
        from dataclasses import asdict

        assert asdict(metrics_from_run(run, record=False)) == decoded["metrics"]

    def test_telemetry_snapshot_included_when_given(self):
        outcome = _outcome()
        registry = MetricsRegistry()
        registry.counter("c").inc()
        document = run_commit_document(
            outcome.run, params={}, registry=registry
        )
        assert "c" in document["telemetry"]

    def test_experiment_document(self):
        from repro.analysis.tables import ResultTable

        table = ResultTable(title="T", columns=["n", "mean"])
        table.add_row(3, 1.25)
        table.add_note("a note")
        document = experiment_document("E2", table, seconds=0.5)
        assert document["schema"] == EXPERIMENT_DOCUMENT_SCHEMA
        assert document["id"] == "E2"
        assert document["seconds"] == 0.5
        assert document["table"]["rows"] == [[3, 1.25]]
        assert document["table"]["notes"] == ["a note"]
        json.dumps(document)  # must be pure JSON
