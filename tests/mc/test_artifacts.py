"""Checker violations must flow through the counterexample pipeline."""

import pytest

from repro.counterexample import shrink_case, verify_replay
from repro.counterexample.shrink import case_fails, case_size
from repro.faults.campaign import execute_trial_case
from repro.mc import (
    MCConfig,
    case_from_violation,
    explore,
    write_violation_artifacts,
)

CONFIG = MCConfig(
    n=3,
    t=1,
    K=2,
    max_cycles=10,
    crash_budget=1,
    order="rr",
    program="broken-commit",
    votes=(0, 1, 0),
)


@pytest.fixture(scope="module")
def report():
    return explore(CONFIG)


class TestCaseFromViolation:
    def test_case_is_sim_only_and_scheduled(self, report):
        case = case_from_violation(CONFIG, report.violations[0])
        assert case.tracks == ("sim",)
        assert case.schedule == report.violations[0].schedule
        assert case.program == "broken-commit"
        assert case.plan.entry_count == 0

    def test_case_respects_the_crash_budget(self, report):
        case = case_from_violation(CONFIG, report.violations[0])
        assert case.scheduled_crashes <= CONFIG.crash_budget
        assert case.within_budget
        assert not case.expect_termination

    def test_replaying_the_case_re_violates_safety(self, report):
        case = case_from_violation(CONFIG, report.violations[0])
        result = execute_trial_case(case)
        violated = {
            v["property"]
            for v in result["tracks"]["sim"]["safety"]["violations"]
            if v["property"] != "nonblocking"
        }
        assert violated  # the checker's word survives the campaign path


class TestArtifacts:
    def test_one_artifact_per_class_with_stable_names(
        self, report, tmp_path
    ):
        written = write_violation_artifacts(
            CONFIG, report.violations, tmp_path
        )
        assert written
        names = [path.name for path in written]
        assert all(name.startswith("mc-counterexample-") for name in names)
        assert "mc-counterexample-abortvalidity.jsonl" in names
        again = write_violation_artifacts(
            CONFIG, report.violations, tmp_path / "again"
        )
        assert [path.name for path in again] == names  # deterministic

    def test_artifacts_replay_byte_identically(self, report, tmp_path):
        written = write_violation_artifacts(
            CONFIG, report.violations, tmp_path
        )
        for path in written:
            verification = verify_replay(path)
            assert verification["match"], path.name


class TestScheduledShrink:
    def test_shrinks_the_schedule_and_still_fails(self, report, tmp_path):
        record = min(report.violations, key=lambda v: len(v.schedule))
        case = case_from_violation(CONFIG, record)
        assert case_fails(case)
        result = shrink_case(case, workers=2)
        minimal = result.minimal
        assert minimal.schedule is not None
        assert len(minimal.schedule) <= len(case.schedule)
        assert case_size(minimal) <= case_size(case)
        assert case_fails(minimal)
        assert result.rounds >= 1  # something actually shrank
