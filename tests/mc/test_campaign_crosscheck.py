"""Cross-check: the checker subsumes the randomized campaign's findings.

A 500-seed randomized fault campaign against ``broken-commit`` at
n=3, t=1, K=2 surfaces some set of violated-property classes.  Every
one of those classes must also be found by ``mc explore`` within the
same bounds — the exhaustive sweep may know *more* than 500 random
samples, never less.  This is the empirical containment argument for
trusting a clean exhaustive sweep over a clean campaign.
"""

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.mc import MCConfig, explore, violation_classes

N, T, K = 3, 1, 2
PLANS = 500


def _campaign_classes(report):
    classes = set()
    for trial in report["trials"]:
        violated = tuple(
            sorted(
                {
                    violation["property"]
                    for violation in trial["tracks"]["sim"]["safety"][
                        "violations"
                    ]
                    if violation["property"] != "nonblocking"
                }
            )
        )
        if violated:
            classes.add(violated)
    return classes


@pytest.fixture(scope="module")
def campaign_classes():
    config = CampaignConfig(
        n=N,
        t=T,
        K=K,
        plans=PLANS,
        base_seed=0,
        tracks=("sim",),
        program="broken-commit",
    )
    return _campaign_classes(run_campaign(config))


@pytest.fixture(scope="module")
def checker_classes():
    config = MCConfig(
        n=N,
        t=T,
        K=K,
        program="broken-commit",
        max_cycles=10,
        crash_budget=1,
        order="rr",
    )
    report = explore(config)
    assert report.exhaustive
    return violation_classes(report.violations)


def test_campaign_finds_something(campaign_classes):
    # The cross-check is vacuous if random sampling finds nothing.
    assert campaign_classes


def test_checker_finds_every_campaign_class(
    campaign_classes, checker_classes, capsys
):
    print(f"campaign classes: {sorted(campaign_classes)}")
    print(f"checker classes:  {sorted(checker_classes)}")
    missing = campaign_classes - checker_classes
    assert not missing, (
        f"random campaign surfaced violation classes the exhaustive "
        f"checker missed within the same bounds: {sorted(missing)}"
    )
