"""Tests for the bounded exhaustive explorer and its reductions."""

import json

from repro.mc import (
    MCConfig,
    explore,
    render_explore_summary,
    violation_classes,
)

#: The certify-preset bounds, pinned to one vote vector for speed.
SMALL = dict(n=3, t=1, K=2, max_cycles=10, crash_budget=1, order="rr")


def small_config(**changes):
    return MCConfig(**{**SMALL, **changes})


class TestSafeExploration:
    def test_commit_single_vector_is_exhaustively_safe(self):
        report = explore(small_config(program="commit", votes=(1, 1, 1)))
        assert report.exhaustive
        assert not report.violations
        assert report.stats.terminal_states > 0
        assert report.stats.states_visited > report.stats.terminal_states
        summary = render_explore_summary(report)
        assert "SAFE" in summary
        assert "exhaustively" in summary

    def test_abort_vote_vector_is_safe_too(self):
        report = explore(small_config(program="commit", votes=(1, 0, 1)))
        assert report.exhaustive
        assert not report.violations


class TestBugFinding:
    def test_broken_commit_found_deterministically(self):
        config = small_config(program="broken-commit", votes=(0, 1, 0))
        first = explore(config)
        second = explore(config)
        assert first.violations
        assert ("abort_validity",) in violation_classes(first.violations)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
        summary = render_explore_summary(first)
        assert "VIOLATIONS FOUND" in summary

    def test_violation_records_carry_replayable_paths(self):
        config = small_config(program="broken-commit", votes=(0, 1, 0))
        report = explore(config)
        record = report.violations[0]
        assert record.votes == (0, 1, 0)
        assert len(record.schedule) > 0
        assert not record.benign

    def test_stop_on_first_cuts_the_sweep(self):
        config = small_config(program="broken-commit", votes=(0, 1, 0))
        full = explore(config)
        first = explore(
            MCConfig.from_dict({**config.to_dict(), "stop_on_first": True})
        )
        assert first.violations
        assert len(first.violations) <= len(full.violations)


class TestReduction:
    def test_por_visits_strictly_fewer_arrivals(self, capsys):
        config = small_config(program="commit", votes=(1, 1, 1))
        reduced = explore(config)
        baseline = explore(
            MCConfig.from_dict({**config.to_dict(), "por": False})
        )
        por_arrivals = reduced.stats.states_visited
        base_arrivals = baseline.stats.states_visited
        print(
            f"arrivals: {por_arrivals} with reduction vs "
            f"{base_arrivals} without "
            f"({reduced.stats.pruned_sleep} transitions slept)"
        )
        assert reduced.stats.pruned_sleep > 0
        assert por_arrivals < base_arrivals
        # Reduction must never change the verdict, only the work.
        assert bool(reduced.violations) == bool(baseline.violations)


class TestDeterministicParallelism:
    def test_reports_byte_identical_at_any_worker_count(self):
        config = small_config(
            program="broken-commit", votes=(0, 1, 0), split_depth=2
        )
        serial = explore(config, workers=1)
        parallel = explore(config, workers=4)
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )


class TestBoundsValves:
    def test_max_states_truncates_instead_of_hanging(self):
        config = small_config(
            program="commit", votes=(1, 1, 1), max_states=40
        )
        report = explore(config)
        assert report.stats.truncated
        assert not report.exhaustive
        assert "TRUNCATED" in render_explore_summary(report)

    def test_free_order_explores_all_interleavings_at_tiny_bounds(self):
        rr = explore(
            small_config(
                program="commit",
                votes=(1, 1, 1),
                order="rr",
                max_cycles=2,
                crash_budget=0,
            )
        )
        free = explore(
            small_config(
                program="commit",
                votes=(1, 1, 1),
                order="free",
                max_cycles=2,
                crash_budget=0,
            )
        )
        assert rr.exhaustive and free.exhaustive
        assert not free.violations
        assert free.stats.states_visited > rr.stats.states_visited
