"""The small-commit certification: the checker's standing self-proof.

This is the acceptance test of the model-checking subsystem: Protocol 2
survives the bounded exhaustive sweep with zero violations (with and
without reduction, both exhaustive), sleep-set reduction visits
strictly fewer states than the unreduced baseline (both counts printed
below), and the planted broken-commit bug is caught within the same
bounds with a counterexample that re-violates through the campaign
path.
"""

import pytest

from repro.errors import ConfigurationError
from repro.mc import CERTIFY_PRESETS, render_certify_summary, run_certify


@pytest.fixture(scope="module")
def report():
    return run_certify("small-commit")


class TestSmallCommit:
    def test_preset_is_registered(self):
        assert "small-commit" in CERTIFY_PRESETS

    def test_certification_passes(self, report):
        assert report["passed"]
        assert [p["phase"] for p in report["phases"]] == [
            "protocol-2-safe",
            "planted-bug-found",
        ]

    def test_safe_phase_is_exhaustive_with_zero_violations(self, report):
        safe = report["phases"][0]
        assert safe["passed"]
        assert safe["violations"] == 0
        assert safe["violations_unreduced"] == 0
        assert safe["exhaustive"]

    def test_reduction_visits_strictly_fewer_states(self, report):
        safe = report["phases"][0]
        por = safe["states_visited_por"]
        baseline = safe["states_visited_baseline"]
        print(
            f"small-commit arrivals: {por} with reduction vs "
            f"{baseline} without ({safe['sleep_pruned']} slept)"
        )
        assert safe["reduction_effective"]
        assert por < baseline
        assert safe["sleep_pruned"] > 0

    def test_bug_phase_finds_and_cross_checks_the_planted_bug(self, report):
        bug = report["phases"][1]
        assert bug["passed"]
        assert bug["violations"] > 0
        assert bug["example_properties"]
        assert bug["example_schedule_length"] > 0
        assert bug["replay_violates"]

    def test_summary_renders_the_verdict(self, report):
        summary = render_certify_summary(report)
        assert "CERTIFIED" in summary
        assert "states visited" in summary


class TestUnknownPreset:
    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError):
            run_certify("no-such-preset")
