"""Fingerprint properties: injectivity, determinism, and the one symmetry.

The hypothesis test drives small simulations (n=3, short prefixes, a
handful of messages) down random adversary paths and checks that the
digest is *injective on the observable state*: whenever two reached
states share a digest, their canonical tuples and budget components are
identical.  The deterministic tests pin the two directions the digest
must distinguish (budgets) and must NOT distinguish (same-step
delivery-order symmetry).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mc import MCConfig, canonical_state, state_digest
from repro.mc.choices import enumerate_choices
from repro.mc.explorer import _SubtreeExplorer
from repro.sim.decisions import StepDecision

QUICK = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: (votes, digest) -> (canonical tuple, delay_spent, sorted late keys),
#: shared across every drawn example so collisions are checked globally.
#: Injectivity is scoped per vote vector: the explorer keeps one visited
#: set per vector (a program's not-yet-externalised vote is invisible to
#: the fingerprint, by design — it never aliases across vectors because
#: vectors never share a search).
_SEEN: dict[tuple, tuple] = {}


def _random_walk(config, votes, seed, depth):
    """Walk ``depth`` random adversary choices; return (sim, budgets)."""
    explorer = _SubtreeExplorer(config, votes)
    sim = explorer.fresh_sim()
    delay_spent, late_keys = 0, frozenset()
    rng = random.Random(seed)
    for _ in range(depth):
        choices = enumerate_choices(sim, config, delay_spent, late_keys)
        if not choices:
            break
        choice = rng.choice(choices)
        delay_spent, late_keys = explorer.charge(
            sim, choice.decision, delay_spent, late_keys
        )
        sim.apply(choice.decision)
    return sim, delay_spent, late_keys


@given(
    seed=st.integers(0, 10_000),
    depth=st.integers(0, 8),
    votes=st.tuples(*[st.integers(0, 1)] * 3),
    order=st.sampled_from(["rr", "free"]),
    crash_budget=st.integers(0, 1),
)
@QUICK
def test_digest_injective_on_observable_state(
    seed, depth, votes, order, crash_budget
):
    config = MCConfig(
        n=3,
        t=1,
        K=2,
        max_cycles=4,
        crash_budget=crash_budget,
        order=order,
    )
    sim, delay_spent, late_keys = _random_walk(config, votes, seed, depth)
    digest = state_digest(sim, delay_spent, late_keys)
    observable = (
        canonical_state(sim),
        delay_spent,
        tuple(sorted(late_keys)),
    )
    previous = _SEEN.setdefault((votes, digest), observable)
    assert previous == observable, (
        "digest collision between observably different states"
    )


class TestDeterminism:
    def test_same_prefix_same_digest(self):
        config = MCConfig(order="rr")
        a, spent_a, late_a = _random_walk(config, (1, 1, 1), seed=7, depth=6)
        b, spent_b, late_b = _random_walk(config, (1, 1, 1), seed=7, depth=6)
        assert state_digest(a, spent_a, late_a) == state_digest(
            b, spent_b, late_b
        )

    def test_budgets_fold_into_digest(self):
        config = MCConfig()
        sim, _, _ = _random_walk(config, (1, 1, 1), seed=0, depth=0)
        assert state_digest(sim, 0, frozenset()) != state_digest(
            sim, 1, frozenset()
        )
        assert state_digest(sim, 0, frozenset()) != state_digest(
            sim, 0, frozenset({(0, 1, 2)})
        )


class TestDeliveryOrderSymmetry:
    def test_same_step_delivery_order_is_abstracted(self):
        """p1 and p2 sending to p0 in either order is one fingerprint.

        Each non-coordinator delivers only the coordinator's GO (the
        other's rebroadcast stays pending), so swapping their steps
        changes nothing observable — only the *insertion order* of
        p0's pending buffer.  The sorted-buffer canonicalisation (see
        repro.mc.fingerprint) must make the two runs one state.
        """
        config = MCConfig(order="free", crash_budget=0)

        def step_delivering_from(sim, pid, senders):
            sim.apply(
                StepDecision(
                    pid=pid,
                    deliver=tuple(
                        env.message_id
                        for env in sim.buffers[pid]
                        if env.sender in senders
                    ),
                )
            )

        def run(order):
            explorer = _SubtreeExplorer(config, (1, 1, 1))
            sim = explorer.fresh_sim()
            step_delivering_from(sim, 0, set())  # GO fan-out
            for pid in order:
                step_delivering_from(sim, pid, {0})
            return sim

        forward = run([1, 2])
        swapped = run([2, 1])
        assert canonical_state(forward) == canonical_state(swapped)
        assert state_digest(forward) == state_digest(swapped)
