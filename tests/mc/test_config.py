"""Tests for MCConfig validation, serialization, and derived bounds."""

import pytest

from repro.errors import ConfigurationError
from repro.mc import MCConfig


class TestValidation:
    def test_defaults_are_valid(self):
        config = MCConfig()
        assert config.n == 3
        assert config.order == "rr"
        assert config.por

    @pytest.mark.parametrize(
        "changes",
        [
            {"n": 1},
            {"t": 3},
            {"t": -1},
            {"K": 0},
            {"max_cycles": 0},
            {"crash_budget": -1},
            {"crash_budget": 3},
            {"delay_budget": -1},
            {"max_late": -1},
            {"max_skew": 0},
            {"order": "sideways"},
            {"split_depth": -1},
            {"max_states": 0},
            {"votes": (1, 1)},
            {"program": "no-such-variant"},
        ],
    )
    def test_bad_values_rejected(self, changes):
        with pytest.raises(ConfigurationError):
            MCConfig(**changes)

    def test_max_skew_none_is_unbounded(self):
        assert MCConfig(max_skew=None).max_skew is None
        assert MCConfig(max_skew=1).max_skew == 1


class TestDerived:
    def test_max_depth_bound(self):
        config = MCConfig(n=3, max_cycles=4, crash_budget=1)
        assert config.max_depth_bound == 13

    def test_vote_vectors_sweep_all(self):
        vectors = MCConfig(n=3).vote_vectors()
        assert len(vectors) == 8
        assert len(set(vectors)) == 8

    def test_vote_vectors_pinned(self):
        assert MCConfig(votes=(1, 0, 1)).vote_vectors() == ((1, 0, 1),)


class TestSerialization:
    def test_round_trip(self):
        config = MCConfig(
            program="broken-commit",
            votes=(0, 1, 1),
            max_cycles=6,
            delay_budget=2,
            max_late=1,
            max_skew=2,
            order="free",
            por=False,
            stop_on_first=True,
        )
        assert MCConfig.from_dict(config.to_dict()) == config

    def test_missing_order_defaults_to_free(self):
        # Documents that older serialized configs (pre-``order``) meant
        # full interleaving freedom.
        doc = MCConfig().to_dict()
        del doc["order"]
        assert MCConfig.from_dict(doc).order == "free"
