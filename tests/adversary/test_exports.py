"""Pin test: every adversary module's public classes are package exports.

Guards against the easy regression where a new adversary module is added
(or an existing class renamed) without updating
``repro.adversary.__init__`` — callers and docs address adversaries
through the package root, so anything public in a submodule must be
importable from there.
"""

import importlib
import inspect
import pkgutil

import repro.adversary as adversary_pkg


def public_classes(module):
    """Classes defined in ``module`` whose names are public."""
    return {
        name
        for name, obj in inspect.getmembers(module, inspect.isclass)
        if obj.__module__ == module.__name__ and not name.startswith("_")
    }


def test_every_module_class_is_importable_from_package_root():
    missing = {}
    for info in pkgutil.iter_modules(adversary_pkg.__path__):
        module = importlib.import_module(f"repro.adversary.{info.name}")
        absent = {
            name
            for name in public_classes(module)
            if not hasattr(adversary_pkg, name)
        }
        if absent:
            missing[info.name] = sorted(absent)
    assert not missing, (
        f"public adversary classes not re-exported from repro.adversary: "
        f"{missing}"
    )


def test_all_list_matches_actual_exports():
    for name in adversary_pkg.__all__:
        assert hasattr(adversary_pkg, name), f"__all__ lists missing {name}"


def test_partition_and_chaos_are_root_importable():
    from repro.adversary import ChaosAdversary, PartitionAdversary

    assert PartitionAdversary.__module__ == "repro.adversary.partition"
    assert ChaosAdversary.__module__ == "repro.adversary.chaos"
