"""Tests for the chaos adversary (safety fuzzing)."""

import pytest

from repro.adversary.chaos import ChaosAdversary
from tests.conftest import make_commit_simulation


class TestChaosAdversary:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ChaosAdversary(n=0)
        with pytest.raises(ValueError):
            ChaosAdversary(n=3, max_crashes=3)
        with pytest.raises(ValueError):
            ChaosAdversary(n=3, crash_probability=2.0)

    def test_safety_over_many_seeds(self):
        for seed in range(12):
            adversary = ChaosAdversary(
                n=5, max_crashes=2, seed=seed, crash_probability=0.01
            )
            sim, _ = make_commit_simulation(
                [1] * 5, adversary=adversary, seed=seed, max_steps=25_000
            )
            result = sim.run()
            assert result.run.agreement_holds(), f"conflict at seed {seed}"
            assert len(result.run.faulty()) <= 2

    def test_abort_validity_under_chaos(self):
        for seed in range(8):
            adversary = ChaosAdversary(n=5, max_crashes=2, seed=seed)
            sim, _ = make_commit_simulation(
                [1, 0, 1, 1, 1], adversary=adversary, seed=seed, max_steps=25_000
            )
            result = sim.run()
            assert 1 not in result.run.decision_values()

    def test_crash_budget_respected(self):
        adversary = ChaosAdversary(
            n=5, max_crashes=1, seed=3, crash_probability=0.5
        )
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, seed=3, max_steps=5_000
        )
        result = sim.run()
        assert len(result.run.faulty()) <= 1

    def test_determinism_per_seed(self):
        def run_once():
            adversary = ChaosAdversary(n=4, max_crashes=1, seed=9)
            sim, _ = make_commit_simulation(
                [1] * 4, t=1, adversary=adversary, seed=9, max_steps=10_000
            )
            return sim.run().run.event_count

        assert run_once() == run_once()
