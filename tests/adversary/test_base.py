"""Tests for the adversary building blocks (policies, cycle skeleton)."""

import random

import pytest

from repro.adversary.base import (
    CrashAt,
    CycleAdversary,
    CycleContext,
    DelayCycles,
    DeliverAll,
    DropNonGuaranteed,
)
from repro.sim.pattern import PendingMessage
from tests.conftest import make_commit_simulation


def pending(mid: int, sender: int = 0, send_event: int = 0, guaranteed=True):
    return PendingMessage(
        message_id=mid,
        sender=sender,
        recipient=1,
        send_event=send_event,
        send_clock=1,
        guaranteed=guaranteed,
    )


def context(cycle: int, event_cycles: list[int]) -> CycleContext:
    return CycleContext(
        cycle=cycle, event_cycles=event_cycles, rng=random.Random(0)
    )


class TestDeliverAll:
    def test_selects_everything(self):
        policy = DeliverAll()
        chosen = policy.select(
            None, 1, [pending(1), pending(2)], context(1, [0, 0])
        )
        assert chosen == (1, 2)


class TestDelayCycles:
    def test_validation(self):
        with pytest.raises(ValueError):
            DelayCycles(min_cycles=3, max_cycles=2)
        with pytest.raises(ValueError):
            DelayCycles(min_cycles=-1)

    def test_holds_until_age_reached(self):
        policy = DelayCycles(min_cycles=3, max_cycles=3)
        ctx_young = context(1, [0])
        assert policy.select(None, 1, [pending(1)], ctx_young) == ()
        ctx_old = context(3, [0])
        assert policy.select(None, 1, [pending(1)], ctx_old) == (1,)

    def test_delay_is_assigned_once(self):
        policy = DelayCycles(min_cycles=1, max_cycles=10)
        message = pending(5)
        ctx = context(0, [0])
        first = policy._delay_for(message, ctx)
        second = policy._delay_for(message, ctx)
        assert first == second


class TestDropNonGuaranteed:
    def test_suppresses_for_victims_only(self):
        inner = DeliverAll()
        policy = DropNonGuaranteed(inner, victims={1})
        messages = [pending(1, guaranteed=False), pending(2, guaranteed=True)]
        ctx = context(1, [0, 0])
        assert policy.select(None, 1, messages, ctx) == (2,)
        assert policy.select(None, 3, messages, ctx) == (1, 2)


class TestCycleAdversary:
    def test_cycle_counter_advances(self):
        adversary = CycleAdversary()
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        for _ in range(7):
            sim.apply(adversary.decide(sim.view))
        assert adversary.cycle == 3  # ceil(7 / 3)

    def test_crash_plan_order_respected(self):
        adversary = CycleAdversary(
            crash_plan=[CrashAt(pid=2, cycle=2), CrashAt(pid=1, cycle=1)]
        )
        sim, _ = make_commit_simulation(
            [1] * 3, t=1, adversary=adversary, max_steps=100
        )
        result = sim.run()
        crashes = [e.actor for e in result.run.events if e.kind == "crash"]
        assert crashes == [1, 2]

    def test_crashed_pid_skipped_in_rotation(self):
        adversary = CycleAdversary(crash_plan=[CrashAt(pid=0, cycle=1)])
        sim, _ = make_commit_simulation(
            [1] * 3, t=1, adversary=adversary, max_steps=60
        )
        result = sim.run()
        steps_by_zero = [
            e
            for e in result.run.events
            if e.kind == "step" and e.actor == 0
        ]
        assert steps_by_zero == []
