"""Tests for the partition, random, and splitter adversaries."""

import pytest

from repro.adversary.partition import PartitionAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.splitter import SplitVoteAdversary
from tests.conftest import make_agreement_simulation, make_commit_simulation


class TestPartitionAdversary:
    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError):
            PartitionAdversary(groups=[{0, 1}, {1, 2}])

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            PartitionAdversary(groups=[{0}], start_cycle=5, heal_cycle=3)

    def test_permanent_partition_blocks_commit(self):
        adversary = PartitionAdversary(groups=[{0, 1, 2}, {3, 4}])
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, max_steps=4_000
        )
        result = sim.run()
        # The majority side can decide abort (GO collection times out);
        # the minority side blocks in the agreement.  Either way: no
        # conflicting decisions, and the minority never decides commit.
        assert result.run.agreement_holds()
        minority = {result.decisions()[pid] for pid in (3, 4)}
        assert minority <= {None, 0}

    def test_healed_partition_terminates(self):
        adversary = PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=30
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.terminated
        assert result.run.agreement_holds()

    def test_partition_during_votes_forces_abort(self):
        adversary = PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=40
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert set(result.decisions().values()) == {0}


class TestRandomAdversary:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomAdversary(deliver_probability=0.0)
        with pytest.raises(ValueError):
            RandomAdversary(force_age=0)

    def test_terminates_and_agrees(self):
        for seed in range(6):
            sim, _ = make_commit_simulation(
                [1] * 5, adversary=RandomAdversary(seed=seed), seed=seed
            )
            result = sim.run()
            assert result.terminated
            assert result.run.agreement_holds()

    def test_fairness_backstop_delivers_old_messages(self):
        adversary = RandomAdversary(
            seed=1, deliver_probability=0.05, force_age=50
        )
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, max_steps=60_000
        )
        result = sim.run()
        assert result.terminated

    def test_determinism_per_seed(self):
        def run_once():
            sim, _ = make_commit_simulation(
                [1] * 5, adversary=RandomAdversary(seed=11), seed=11
            )
            return sim.run().run.event_count

        assert run_once() == run_once()


class TestSplitVoteAdversary:
    def test_rejects_bad_hold(self):
        with pytest.raises(ValueError):
            SplitVoteAdversary(n=4, hold_cycles=0)

    def test_camps_cover_all_processors(self):
        adversary = SplitVoteAdversary(n=5)
        assert set(adversary.camp_of) == set(range(5))
        assert set(adversary.camp_of.values()) == {0, 1}

    def test_agreement_survives_the_splitter(self):
        for seed in range(4):
            sim, _ = make_agreement_simulation(
                [0, 1, 0, 1, 0],
                adversary=SplitVoteAdversary(n=5, seed=seed),
                seed=seed,
            )
            result = sim.run()
            assert result.terminated
            assert result.run.agreement_holds()

    def test_cross_camp_messages_are_held(self):
        adversary = SplitVoteAdversary(n=4, hold_cycles=3)
        sim, _ = make_agreement_simulation(
            [0, 1, 0, 1], t=1, adversary=adversary
        )
        result = sim.run()
        # Some delivered cross-camp envelope must have taken >= 3 cycles:
        # verify indirectly via per-message step gaps.
        gaps = []
        for env in result.run.delivered_envelopes():
            if adversary.camp_of[env.sender] != adversary.camp_of[env.recipient]:
                gaps.append(
                    result.run.steps_in_interval(
                        env.sender, env.send_event, env.receive_event
                    )
                )
        assert gaps and max(gaps) >= 2
