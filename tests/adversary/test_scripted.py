"""Tests for scripted and function adversaries."""

import pytest

from repro.adversary.scripted import FunctionAdversary, ScriptedAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.errors import ConfigurationError, SchedulingError
from repro.sim.decisions import CrashDecision, StepDecision
from tests.conftest import make_commit_simulation


class TestScriptedAdversary:
    def test_replays_in_order(self):
        script = [StepDecision(pid=2), StepDecision(pid=0)]
        adversary = ScriptedAdversary(script)
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        sim.apply(adversary.decide(sim.view))
        sim.apply(adversary.decide(sim.view))
        actors = [e.actor for e in sim.pattern_entries()]
        assert actors == [2, 0]

    def test_exhaustion_raises_without_fallback(self):
        adversary = ScriptedAdversary([StepDecision(pid=0)])
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        adversary.decide(sim.view)
        assert adversary.exhausted
        with pytest.raises(SchedulingError):
            adversary.decide(sim.view)

    def test_fallback_takes_over(self):
        adversary = ScriptedAdversary(
            [StepDecision(pid=1)], then=SynchronousAdversary()
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        result = sim.run()
        assert result.terminated
        assert result.run.events[0].actor == 1


class TestScriptedValidation:
    """Unreplayable scripts fail loudly, naming the offending slot."""

    def test_unknown_pid_rejected(self):
        adversary = ScriptedAdversary([StepDecision(pid=9)])
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        with pytest.raises(ConfigurationError, match=r"script\[0\].*pid 9"):
            adversary.decide(sim.view)

    def test_negative_pid_rejected(self):
        adversary = ScriptedAdversary([CrashDecision(pid=-1)])
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        with pytest.raises(ConfigurationError, match=r"unknown pid"):
            adversary.decide(sim.view)

    def test_stepping_a_crashed_pid_rejected(self):
        adversary = ScriptedAdversary(
            [CrashDecision(pid=1), StepDecision(pid=1)]
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        sim.apply(adversary.decide(sim.view))
        with pytest.raises(
            ConfigurationError, match=r"script\[1\].*already crashed"
        ):
            adversary.decide(sim.view)

    def test_out_of_range_message_ids_rejected(self):
        adversary = ScriptedAdversary(
            [StepDecision(pid=0, deliver=(999,))]
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        with pytest.raises(
            ConfigurationError, match=r"script\[0\].*\[999\].*not pending"
        ):
            adversary.decide(sim.view)

    def test_valid_script_unaffected_by_validation(self):
        adversary = ScriptedAdversary(
            [StepDecision(pid=0)], then=SynchronousAdversary()
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        result = sim.run()
        assert result.terminated


class TestFunctionAdversary:
    def test_wraps_callable(self):
        def always_zero(view):
            return StepDecision(pid=0, deliver=tuple(view.pending_ids(0)))

        adversary = FunctionAdversary(always_zero)
        sim, _ = make_commit_simulation(
            [1] * 3, t=1, adversary=adversary, max_steps=20
        )
        result = sim.run()
        assert {e.actor for e in result.run.events} == {0}
