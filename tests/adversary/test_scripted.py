"""Tests for scripted and function adversaries."""

import pytest

from repro.adversary.scripted import FunctionAdversary, ScriptedAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.errors import SchedulingError
from repro.sim.decisions import StepDecision
from tests.conftest import make_commit_simulation


class TestScriptedAdversary:
    def test_replays_in_order(self):
        script = [StepDecision(pid=2), StepDecision(pid=0)]
        adversary = ScriptedAdversary(script)
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        sim.apply(adversary.decide(sim.view))
        sim.apply(adversary.decide(sim.view))
        actors = [e.actor for e in sim.pattern_entries()]
        assert actors == [2, 0]

    def test_exhaustion_raises_without_fallback(self):
        adversary = ScriptedAdversary([StepDecision(pid=0)])
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        adversary.decide(sim.view)
        assert adversary.exhausted
        with pytest.raises(SchedulingError):
            adversary.decide(sim.view)

    def test_fallback_takes_over(self):
        adversary = ScriptedAdversary(
            [StepDecision(pid=1)], then=SynchronousAdversary()
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        result = sim.run()
        assert result.terminated
        assert result.run.events[0].actor == 1


class TestFunctionAdversary:
    def test_wraps_callable(self):
        def always_zero(view):
            return StepDecision(pid=0, deliver=tuple(view.pending_ids(0)))

        adversary = FunctionAdversary(always_zero)
        sim, _ = make_commit_simulation(
            [1] * 3, t=1, adversary=adversary, max_steps=20
        )
        result = sim.run()
        assert {e.actor for e in result.run.events} == {0}
