"""Tests for the standard adversary roster."""

import pytest

from repro.adversary.base import CrashAt
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.types import ProcessStatus
from tests.conftest import make_commit_simulation


class TestSynchronousAdversary:
    def test_runs_are_failure_free_and_on_time(self):
        sim, _ = make_commit_simulation([1] * 5)
        result = sim.run()
        assert not result.run.faulty()
        assert result.run.is_on_time()

    def test_round_robin_step_order(self):
        sim, _ = make_commit_simulation([1] * 3, t=1)
        result = sim.run()
        actors = [e.actor for e in result.run.events if e.kind == "step"]
        assert actors[:6] == [0, 1, 2, 0, 1, 2]

    def test_crash_plan_executes_at_cycle(self):
        adversary = SynchronousAdversary(
            crash_plan=[CrashAt(pid=4, cycle=3)]
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.run.statuses[4] is ProcessStatus.CRASHED
        crash_events = [e for e in result.run.events if e.kind == "crash"]
        assert len(crash_events) == 1
        assert crash_events[0].actor == 4


class TestOnTimeAdversary:
    def test_rejects_k_below_two(self):
        with pytest.raises(ValueError):
            OnTimeAdversary(K=1)

    def test_rejects_excessive_max_delay(self):
        with pytest.raises(ValueError):
            OnTimeAdversary(K=4, max_delay=4)

    @pytest.mark.parametrize("K", [2, 4, 8])
    def test_runs_stay_on_time(self, K):
        for seed in range(3):
            sim, _ = make_commit_simulation(
                [1] * 5, K=K, adversary=OnTimeAdversary(K=K, seed=seed)
            )
            result = sim.run()
            assert result.run.is_on_time(), f"late message with K={K} seed={seed}"

    def test_commit_validity_preserved(self):
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=OnTimeAdversary(K=4, seed=3)
        )
        result = sim.run()
        assert set(result.decisions().values()) == {1}


class TestLateMessageAdversary:
    def test_rejects_small_lateness_factor(self):
        with pytest.raises(ValueError):
            LateMessageAdversary(K=4, lateness_factor=1)

    def test_injects_late_messages(self):
        adversary = LateMessageAdversary(
            K=2, seed=1, late_probability=0.5, lateness_factor=3
        )
        sim, _ = make_commit_simulation([1] * 5, K=2, adversary=adversary)
        result = sim.run()
        if result.run.is_on_time():
            pytest.skip("all held messages were undelivered in this seed")
        assert result.run.late_messages()

    def test_safety_despite_lateness(self):
        for seed in range(6):
            adversary = LateMessageAdversary(
                K=4, seed=seed, late_probability=0.5
            )
            sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
            result = sim.run()
            assert result.run.agreement_holds()

    def test_target_senders_scopes_lateness(self):
        adversary = LateMessageAdversary(
            K=4,
            seed=2,
            late_probability=1.0,
            target_senders={0},
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        late_senders = {env.sender for env in result.run.late_messages()}
        assert late_senders <= {0}
