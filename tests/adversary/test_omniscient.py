"""Tests for the content-aware balancing adversary."""

import pytest

from repro.adversary.omniscient import OmniscientBalancer
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.errors import SchedulingError
from repro.protocols.benor import BenOrProgram
from repro.sim.scheduler import Simulation


def run_balanced(programs, n, t, seed=0, max_steps=120_000):
    adversary = OmniscientBalancer(n=n, t=t, seed=seed)
    sim = Simulation(
        programs, adversary, K=4, t=t, seed=seed, max_steps=max_steps
    )
    adversary.attach(sim)
    return sim.run(), programs


class TestOmniscientBalancer:
    def test_flagged_non_compliant(self):
        assert OmniscientBalancer(n=4, t=1).model_compliant is False

    def test_requires_attachment(self):
        adversary = OmniscientBalancer(n=4, t=1)
        programs = [BenOrProgram(p, 4, 1, p % 2) for p in range(4)]
        sim = Simulation(programs, adversary, K=4, t=1)
        with pytest.raises(SchedulingError, match="attach"):
            sim.run()

    def test_delays_benor_beyond_honest_schedules(self):
        # Under the balancer, Ben-Or with split inputs needs several
        # stages (expected ~2^(n-1)); honest schedules finish in ~2.
        stage_counts = []
        for seed in range(5):
            programs = [BenOrProgram(p, 4, 1, p % 2) for p in range(4)]
            result, programs = run_balanced(programs, n=4, t=1, seed=seed)
            assert result.terminated
            stage_counts.append(
                max(p.stats.stages_started for p in programs)
            )
        assert max(stage_counts) >= 3

    def test_benor_still_safe_under_balancer(self):
        for seed in range(4):
            programs = [BenOrProgram(p, 4, 1, p % 2) for p in range(4)]
            result, _ = run_balanced(programs, n=4, t=1, seed=seed)
            values = {
                d for d in result.decisions().values() if d is not None
            }
            assert len(values) <= 1

    def test_shared_coins_defeat_the_balancer(self):
        # Protocol 1 under the same attack: a balanced stage lands every
        # processor on the same shared coin -> decide within ~3 stages.
        for seed in range(5):
            coins = shared_coins(4, seed=seed + 77)
            programs = [
                AgreementProgram(p, 4, 1, p % 2, coins=coins)
                for p in range(4)
            ]
            result, programs = run_balanced(programs, n=4, t=1, seed=seed)
            assert result.terminated
            assert max(p.stats.stages_started for p in programs) <= 3

    def test_unanimous_inputs_cannot_be_balanced(self):
        # With all inputs equal the balancer has nothing to balance:
        # feasibility fails, messages are released, decision is fast.
        programs = [BenOrProgram(p, 4, 1, 1) for p in range(4)]
        result, programs = run_balanced(programs, n=4, t=1)
        assert result.terminated
        assert set(result.decisions().values()) == {1}
        assert max(p.stats.stages_started for p in programs) <= 2
