"""Tests for crash-injecting adversaries."""

import pytest

from repro.adversary.base import CrashAt
from repro.adversary.crash import AdaptiveCrashAdversary, ScheduledCrashAdversary
from repro.types import ProcessStatus
from tests.conftest import make_commit_simulation


class TestScheduledCrashAdversary:
    def test_crashes_follow_the_plan(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=2, cycle=2), CrashAt(pid=3, cycle=4)]
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.run.faulty() == {2, 3}
        crash_order = [
            e.actor for e in result.run.events if e.kind == "crash"
        ]
        assert crash_order == [2, 3]

    def test_crashed_processors_take_no_further_steps(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=1, cycle=2)]
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        crash_index = next(
            e.index for e in result.run.events if e.kind == "crash"
        )
        later_steps = [
            e
            for e in result.run.events
            if e.index > crash_index and e.actor == 1
        ]
        assert later_steps == []

    def test_termination_with_t_crashes(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=3, cycle=2), CrashAt(pid=4, cycle=2)]
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.terminated
        survivors_decisions = {
            result.decisions()[pid] for pid in (0, 1, 2)
        }
        assert len(survivors_decisions) == 1


class TestAdaptiveCrashAdversary:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            AdaptiveCrashAdversary(victims=[0], kill_after_sends=0)

    def test_kills_after_first_send(self):
        adversary = AdaptiveCrashAdversary(victims=[0], kill_after_sends=1)
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert 0 in result.run.faulty()
        # The victim sent at least one envelope before dying (the kill is
        # pattern-triggered by its send).
        assert any(env.sender == 0 for env in result.run.envelopes.values())

    def test_partial_broadcast_suppression(self):
        adversary = AdaptiveCrashAdversary(
            victims=[0], kill_after_sends=1, suppress_to={1, 2}
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        # The victims' non-guaranteed envelopes to 1 and 2 stay pending.
        undelivered = [
            env
            for env in result.run.envelopes.values()
            if env.sender == 0 and not env.guaranteed and not env.delivered
        ]
        assert {env.recipient for env in undelivered} <= {1, 2}
        assert result.run.agreement_holds()

    def test_safety_with_coordinator_killed(self):
        for seed in range(4):
            adversary = AdaptiveCrashAdversary(
                victims=[0], kill_after_sends=2, seed=seed
            )
            sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
            result = sim.run()
            assert result.run.agreement_holds()
            assert result.terminated
