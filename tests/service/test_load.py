"""Load-generator tests: open-loop traffic, latency accounting, faults."""

import pytest

from repro.errors import ConfigurationError
from repro.service.cluster import TxnWorkload
from repro.service.load import kill_recover_plan, percentile, run_load


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 10)]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.99) == 9.0
        assert percentile(values, 0.0) == 1.0

    def test_empty(self):
        assert percentile([], 0.5) == 0.0


class TestWorkload:
    def test_open_loop_schedule(self):
        workload = TxnWorkload.open_loop(4, 500.0, 0.002)
        assert [s.txn_id for s in workload.submissions] == [1, 2, 3, 4]
        cycles = [s.at_cycle for s in workload.submissions]
        assert cycles == sorted(cycles)
        assert cycles[1] - cycles[0] == pytest.approx(1.0)  # 500/s at 2ms

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TxnWorkload.open_loop(0, 500.0, 0.002)
        with pytest.raises(ConfigurationError):
            TxnWorkload.open_loop(5, 0.0, 0.002)


class TestKillRecoverPlan:
    def test_respects_per_group_tolerance(self):
        plan = kill_recover_plan(
            2, 3, kills=4, seed=7, window_cycles=100, tolerance=1
        )
        per_group: dict[int, int] = {}
        for crash in plan.crashes:
            group = crash.pid // 3
            per_group[group] = per_group.get(group, 0) + 1
            assert crash.recover_cycle is not None  # every kill recovers
        assert all(count <= 1 for count in per_group.values())

    def test_deterministic_in_seed(self):
        first = kill_recover_plan(2, 5, 3, seed=9, window_cycles=50,
                                  tolerance=2)
        second = kill_recover_plan(2, 5, 3, seed=9, window_cycles=50,
                                   tolerance=2)
        assert first.to_dict() == second.to_dict()


class TestRunLoad:
    def test_fault_free_burst_decides_everything(self):
        report = run_load(
            txns=20, rate=400.0, shards=2, group_size=3, seed=1
        )
        assert report.outcome == "terminated"
        assert report.submitted == 20
        assert report.decided == 20
        assert report.safety_violations == 0
        assert report.undecided == {}
        assert report.throughput > 0
        assert 0 < report.p50_latency <= report.p99_latency
        doc = report.to_dict()
        assert doc["throughput_txn_per_s"] == report.throughput
        assert doc["safety_violations"] == 0

    def test_kill_recover_burst_stays_safe(self):
        report = run_load(
            txns=16, rate=200.0, shards=2, group_size=3, seed=3, kills=2
        )
        assert report.safety_violations == 0
        assert report.kills == 2
        assert report.recoveries >= 1
        assert report.outcome == "terminated"
        assert report.decided == 16

    def test_single_shard_sustains_virtual_rate(self):
        # The CI floor asserted by the benchmark, at smoke-test scale.
        report = run_load(txns=30, rate=600.0, shards=1, group_size=5,
                          seed=2)
        assert report.outcome == "terminated"
        assert report.decided == 30
        assert report.throughput >= 500.0
