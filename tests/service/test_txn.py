"""Multi-transaction service tests: sharding, wire v2, the multiplexer.

Covers the edge cases the instance multiplexer introduced on top of the
single-transaction (v1) service: duplicate submissions, interleaved WAL
records of concurrent instances replaying byte-identically after a
mid-commit kill, v1 logs recovering under the new reader, and the
close-record compaction of decided instances.
"""

import asyncio

import pytest

from repro.errors import ServiceError, WalError
from repro.faults.plan import CrashFault, FaultPlan
from repro.runtime.cluster import NONTERMINATED, TERMINATED
from repro.runtime.virtualtime import run_virtual
from repro.service.cluster import (
    ServiceCluster,
    TxnWorkload,
    node_configs,
    shard_configs,
)
from repro.service.node import ServiceNode
from repro.service.recovery import NodeConfig, replay
from repro.service.txn import (
    DEFAULT_TXN,
    InstanceMux,
    ShardMap,
    groups_to_wal,
    tag_txn,
    txn_tape_seed,
    txn_vote,
    wal_to_groups,
)
from repro.service.wal import MemoryWalStore, durable_records
from repro.service.wire import ServiceEnvelope
from repro.core.messages import GoMessage
from repro.sim.message import RawPayload

K = 4


def multi_config(pid=0, n=3, base=0, commit_bias=1.0, tape_seed=77):
    return NodeConfig(
        pid=pid,
        n=n,
        t=1,
        K=K,
        vote=1,
        tape_seed=tape_seed,
        multi_txn=True,
        base=base,
        commit_bias=commit_bias,
    )


class TestShardMap:
    def test_layout(self):
        shard_map = ShardMap(shards=3, group_size=5)
        assert shard_map.total_pids == 15
        assert shard_map.group_of(7) == 1
        assert shard_map.coordinator(7) == 5
        assert list(shard_map.members(2)) == [10, 11, 12, 13, 14]
        assert shard_map.group_of_pid(12) == 2

    def test_every_txn_coordinator_is_its_groups_base(self):
        shard_map = ShardMap(shards=4, group_size=3)
        for txn in range(40):
            group = shard_map.group_of(txn)
            assert shard_map.coordinator(txn) == shard_map.base(group)
            assert shard_map.coordinator(txn) in shard_map.members(group)

    def test_validation(self):
        with pytest.raises(ServiceError):
            ShardMap(shards=0, group_size=5)
        with pytest.raises(ServiceError):
            ShardMap(shards=2, group_size=0)


class TestWireV2:
    def test_single_default_group_encodes_as_v1(self):
        payloads = (RawPayload(data={"a": 1}),)
        envelope = ServiceEnvelope.msg(
            sender=1, incarnation=0, seq=3, groups=[(DEFAULT_TXN, payloads)]
        )
        assert envelope.payloads == payloads
        assert envelope.groups == ()
        doc = envelope.to_dict()
        assert "payloads" in doc and "txns" not in doc
        assert ServiceEnvelope.decode(envelope.encode()) == envelope

    def test_multi_group_roundtrip(self):
        groups = [
            (1, (RawPayload(data={"a": 1}),)),
            (4, (RawPayload(data={"b": 2}),)),
        ]
        envelope = ServiceEnvelope.msg(
            sender=2, incarnation=1, seq=0, groups=groups
        )
        assert envelope.payloads == ()
        doc = envelope.to_dict()
        assert "txns" in doc and "payloads" not in doc
        decoded = ServiceEnvelope.decode(envelope.encode())
        assert decoded.payload_groups() == tuple(
            (txn, tuple(p)) for txn, p in groups
        )

    def test_v1_envelope_reads_as_default_group(self):
        envelope = ServiceEnvelope(
            kind="msg",
            sender=0,
            seq=0,
            payloads=(RawPayload(data="x"),),
        )
        ((txn, payloads),) = envelope.payload_groups()
        assert txn == DEFAULT_TXN
        assert len(payloads) == 1

    def test_payloads_and_groups_are_exclusive(self):
        with pytest.raises(ServiceError):
            ServiceEnvelope(
                kind="msg",
                sender=0,
                payloads=(RawPayload(data="x"),),
                groups=((1, (RawPayload(data="y"),)),),
            )

    def test_empty_groups_are_dropped_from_normal_form(self):
        envelope = ServiceEnvelope.msg(
            sender=0,
            incarnation=0,
            seq=0,
            groups=[(1, ()), (2, (RawPayload(data="x"),))],
        )
        assert [txn for txn, _ in envelope.payload_groups()] == [2]


class TestWalForms:
    def test_single_default_group_is_v1_flat_list(self):
        groups = [(DEFAULT_TXN, (RawPayload(data={"a": 1}),))]
        encoded = groups_to_wal(groups)
        assert isinstance(encoded, list)  # the v1 shape
        assert wal_to_groups(encoded) == [
            (DEFAULT_TXN, [RawPayload(data={"a": 1})])
        ]

    def test_multi_group_roundtrip(self):
        groups = [
            (3, (RawPayload(data="x"),)),
            (1, (RawPayload(data="y"),)),
        ]
        encoded = groups_to_wal(groups)
        assert isinstance(encoded, dict) and "g" in encoded
        assert wal_to_groups(encoded) == [
            (txn, list(payloads)) for txn, payloads in groups
        ]

    def test_empty_batch_entry(self):
        assert groups_to_wal([]) == []
        assert wal_to_groups([]) == []

    def test_tag_txn_leaves_default_untagged(self):
        assert "txn" not in tag_txn(DEFAULT_TXN, {"type": "submit"})
        assert tag_txn(9, {"type": "submit"})["txn"] == 9


class TestPerTxnDerivations:
    def test_default_txn_keeps_node_seed_and_vote(self):
        config = multi_config(tape_seed=1234)
        assert txn_tape_seed(1234, DEFAULT_TXN) == 1234
        assert txn_vote(config, DEFAULT_TXN) == config.vote

    def test_other_txns_draw_distinct_seeds(self):
        seeds = {txn_tape_seed(1234, txn) for txn in range(6)}
        assert len(seeds) == 6

    def test_commit_bias_votes_are_deterministic(self):
        config = multi_config(commit_bias=0.5, tape_seed=9)
        votes = [txn_vote(config, txn) for txn in range(1, 40)]
        assert votes == [txn_vote(config, txn) for txn in range(1, 40)]
        assert set(votes) == {0, 1}  # both outcomes occur at bias 0.5

    def test_full_bias_always_commits(self):
        config = multi_config(commit_bias=1.0)
        assert all(txn_vote(config, txn) == 1 for txn in range(1, 20))


class TestDuplicateSubmission:
    def test_duplicate_submit_rejected_cleanly(self):
        node = ServiceNode(
            multi_config(),
            MemoryWalStore(),
            lambda recipient, env, attempt: None,
            fsync=False,
        )

        async def scenario():
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.01)
            node.submit_txn(7)
            with pytest.raises(ServiceError, match="duplicate submission"):
                node.submit_txn(7)
            node.halt()
            await asyncio.wait_for(runner, timeout=1.0)

        run_virtual(scenario())
        # Exactly one durable submit record made it to the log.
        records = durable_records(node.store).records
        assert [r for r in records if r["type"] == "submit"] == [
            {"type": "submit", "txn": 7}
        ]

    def test_submit_to_closed_txn_rejected(self):
        node = ServiceNode(
            multi_config(),
            MemoryWalStore(),
            lambda recipient, env, attempt: None,
            fsync=False,
        )

        async def scenario():
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.01)
            instance = node.mux.ensure(5)
            instance.transfer_decision = 1
            instance.decision_logged = True
            node.mux.close_txn(5)
            with pytest.raises(ServiceError, match="already decided"):
                node.submit_txn(5)
            node.halt()
            await asyncio.wait_for(runner, timeout=1.0)

        run_virtual(scenario())

    def test_default_txn_submit_stays_idempotent(self):
        # The v1 TCP service re-submits on client retry; that contract
        # survives the multiplexer.
        node = ServiceNode(
            node_configs(3, 1, [1, 1, 1], K, seed=0)[0],
            MemoryWalStore(),
            lambda recipient, env, attempt: None,
            fsync=False,
        )

        async def scenario():
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.01)
            node.submit()
            node.submit()
            node.halt()
            await asyncio.wait_for(runner, timeout=1.0)

        run_virtual(scenario())
        records = durable_records(node.store).records
        assert len([r for r in records if r["type"] == "submit"]) == 1


def run_multi_cluster(
    shards,
    group_size,
    txns,
    plan=None,
    seed=0,
    rate=200.0,
    deadline=8.0,
    **kwargs,
):
    shard_map = ShardMap(shards=shards, group_size=group_size)
    cluster = ServiceCluster(
        shard_configs(shards, group_size, 1, K, seed),
        plan,
        seed=seed,
        K=K,
        workload=TxnWorkload.open_loop(txns, rate, 0.002),
        shard_map=shard_map,
        **kwargs,
    )
    result = run_virtual(cluster.run(deadline=deadline))
    return cluster, result


class TestInterleavedReplay:
    def test_two_instances_replay_byte_identically_after_kill(self):
        """Satellite: interleaved WAL records of two concurrent
        instances must replay to the live state after a mid-commit kill
        of their hosting node."""
        plan = FaultPlan(
            n=3, crashes=(CrashFault(pid=1, cycle=2, recover_cycle=12),)
        )
        cluster, result = run_multi_cluster(
            1, 3, 2, plan=plan, seed=21, rate=2000.0
        )
        assert result.outcome == TERMINATED
        assert result.recoveries == 1
        assert len(result.txn_decision_values()) == 2
        assert all(
            len(values) == 1
            for values in result.txn_decision_values().values()
        )
        for pid in range(3):
            records = durable_records(cluster.stores[pid]).records
            # Both transactions interleave in this node's single log.
            txns_in_log = {
                r.get("txn")
                for r in records
                if r["type"] in ("decision", "submit", "vote")
            }
            assert {1, 2} <= txns_in_log
            replayed = replay(records)
            assert replayed.mux.digest() == cluster.nodes[pid].mux.digest()
            assert replayed.decisions() == cluster.nodes[pid].decisions()

    def test_compaction_closes_decided_instances(self):
        cluster, result = run_multi_cluster(
            1, 3, 3, seed=4, rate=2000.0, snapshot_every=8
        )
        assert result.outcome == TERMINATED
        closed = [
            r
            for pid in range(3)
            for r in durable_records(cluster.stores[pid]).records
            if r["type"] == "close"
        ]
        assert closed  # compaction demoted decided instances to stubs
        for pid in range(3):
            records = durable_records(cluster.stores[pid]).records
            replayed = replay(records)
            assert replayed.mux.digest() == cluster.nodes[pid].mux.digest()

    def test_sharded_groups_decide_independently(self):
        _, result = run_multi_cluster(2, 3, 4, seed=6, rate=1000.0)
        assert result.outcome == TERMINATED
        assert sorted(result.txn_decision_values()) == [1, 2, 3, 4]
        assert result.undecided == {}


class TestV1WalCompat:
    def test_v1_log_recovers_under_new_reader(self):
        """Satellite: a WAL written by the single-transaction service
        (flat payload lists, no txn tags) replays under the reader."""
        config = node_configs(3, 1, [1, 1, 1], K, seed=0)[0]
        store = MemoryWalStore()

        async def first_life():
            node = ServiceNode(
                config,
                store,
                lambda recipient, env, attempt: None,
                fsync=False,
            )
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.05)
            node.halt()
            await asyncio.wait_for(runner, timeout=1.0)
            return node

        node = run_virtual(first_life())
        records = durable_records(store).records
        # The log is v1 in shape: no txn keys, no grouped payload dicts.
        for record in records:
            assert "txn" not in record
            for entry in record.get("batch", []):
                assert not isinstance(entry[3], dict)
        replayed = replay(records)
        assert replayed.mux.digest() == node.mux.digest()
        assert replayed.steps == node._steps

    def test_handwritten_v1_records_replay(self):
        config = node_configs(3, 1, [1, 1, 1], K, seed=0)[1]
        records = [
            {"type": "init", "config": config.to_dict()},
            {"type": "step"},
            {"type": "step"},
        ]
        result = replay(records)
        assert result.steps == 2
        assert result.process is not None
        assert result.process.clock == 2


class TestCloseRecordReplay:
    def test_close_without_live_instance_rejected(self):
        config = multi_config()
        records = [
            {"type": "init", "config": config.to_dict()},
            {"type": "close", "txn": 3, "value": 1, "origin": "process"},
        ]
        with pytest.raises(WalError, match="no .*instance"):
            replay(records)

    def test_close_value_conflict_rejected(self):
        config = multi_config()
        records = [
            {"type": "init", "config": config.to_dict()},
            {"type": "submit", "txn": 3},
            {"type": "decision", "txn": 3, "value": 1, "origin": "transfer"},
            {"type": "close", "txn": 3, "value": 0, "origin": "transfer"},
        ]
        with pytest.raises(WalError, match="conflicts"):
            replay(records)

    def test_closed_stub_remembers_decision(self):
        config = multi_config()
        records = [
            {"type": "init", "config": config.to_dict()},
            {"type": "submit", "txn": 3},
            {"type": "decision", "txn": 3, "value": 1, "origin": "transfer"},
            {"type": "close", "txn": 3, "value": 1, "origin": "transfer"},
        ]
        result = replay(records)
        instance = result.mux.get(3)
        assert instance.process is None
        assert instance.decision == 1
        assert result.decisions() == {3: 1}


class TestHaltHammer:
    def test_halt_at_every_cycle_offset(self):
        """Satellite: halt() must reliably stop the run loop no matter
        where inside (or exactly on) a tick boundary it lands — the
        py3.11 ``wait_for`` cancellation race made this flaky before the
        event-based pump."""
        config = node_configs(3, 1, [1, 1, 1], K, seed=0)[1]

        async def scenario():
            tick = 0.002
            for i in range(48):
                node = ServiceNode(
                    config,
                    MemoryWalStore(),
                    lambda recipient, env, attempt: None,
                    fsync=False,
                    tick_interval=tick,
                )
                runner = asyncio.ensure_future(node.run())
                # Quarter-tick offsets sweep halts across tick interiors
                # and exact boundaries (the racy case on a virtual clock).
                await asyncio.sleep(i * tick / 4)
                node.halt()
                # No cancel: halt alone must end the loop, promptly.
                await asyncio.wait_for(runner, timeout=4 * tick + 0.01)

        run_virtual(scenario())

    def test_halt_mid_traffic(self):
        plan = None

        async def scenario():
            shard_map = ShardMap(shards=1, group_size=3)
            cluster = ServiceCluster(
                shard_configs(1, 3, 1, K, seed=3),
                plan,
                seed=3,
                K=K,
                workload=TxnWorkload.open_loop(4, 2000.0, 0.002),
                shard_map=shard_map,
            )
            return await cluster.run(deadline=8.0)

        result = run_virtual(scenario())
        assert result.outcome == TERMINATED


class TestDeadlineReporting:
    def test_timeout_names_undecided_nodes_and_txns(self):
        """Satellite: a deadline expiry reports exactly which (node,
        transaction) pairs were still open — not a bare TimeoutError."""
        _, result = run_multi_cluster(
            1, 3, 2, seed=5, rate=2000.0, deadline=0.006
        )
        assert result.outcome == NONTERMINATED
        assert result.undecided  # structured, attributable
        for pid, txns in result.undecided.items():
            assert pid in range(3)
            assert txns and all(txn in (1, 2) for txn in txns)

    def test_legacy_timeout_reports_default_txn(self):
        configs = node_configs(3, 1, [1, 1, 1], K, seed=0)
        cluster = ServiceCluster(configs, None, seed=0, K=K)
        result = run_virtual(cluster.run(deadline=0.003))
        assert result.outcome == NONTERMINATED
        assert set(result.undecided) <= set(range(3))
        assert all(txns == [DEFAULT_TXN] for txns in result.undecided.values())

    def test_terminated_run_reports_no_undecided(self):
        _, result = run_multi_cluster(1, 3, 2, seed=8, rate=2000.0)
        assert result.outcome == TERMINATED
        assert result.undecided == {}


class TestMuxStepSemantics:
    def test_lazy_instance_created_on_first_delivery(self):
        mux = InstanceMux(multi_config(pid=1))
        assert mux.instances == {}
        payload = GoMessage(coins=(1,) * K)
        mux.apply_step([(0, [(2, (payload,))])])
        assert 2 in mux.instances
        assert mux.instances[2].process is not None

    def test_closed_stub_hit_reported(self):
        mux = InstanceMux(multi_config(pid=1))
        instance = mux.ensure(2)
        instance.transfer_decision = 1
        instance.decision_logged = True
        mux.close_txn(2)
        payload = RawPayload(data="x")
        effects = mux.apply_step([(0, [(2, (payload,))])])
        assert effects.closed_hits == [(0, 2)]
        assert effects.outgoing == []

    def test_single_txn_mode_is_eager(self):
        config = node_configs(3, 1, [1, 1, 1], K, seed=0)[0]
        mux = InstanceMux(config)
        assert DEFAULT_TXN in mux.instances
        assert not mux.idle  # undecided default instance has work
