"""End-to-end tests for the TCP service: real sockets, real clock.

Kept small (one 3-node commit plus one restart) — the heavy schedule
sweeps live in the virtual-clock cluster and property tests.
"""

import asyncio
import socket

from repro.service.client import request
from repro.service.cluster import node_configs
from repro.service.server import ServiceServer
from repro.service.wal import MemoryWalStore
from repro.service.wire import ServiceEnvelope

N, T, K = 3, 1, 4


def free_ports(count):
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


async def wait_decided(nodes, timeout=20.0):
    async def poll():
        while any(node.decision is None for node in nodes):
            await asyncio.sleep(0.02)

    await asyncio.wait_for(poll(), timeout=timeout)


def make_servers(stores, peers):
    configs = node_configs(N, T, [1] * N, K, seed=4)
    return [
        ServiceServer(
            configs[pid],
            stores[pid],
            peers,
            tick_interval=0.005,
            fsync=False,
            hold_for_submit=(pid == 0),
            seed=4,
        )
        for pid in range(N)
    ]


def test_commit_over_tcp_with_coordinator_restart():
    stores = [MemoryWalStore() for _ in range(N)]
    peers = [("127.0.0.1", port) for port in free_ports(N)]

    async def scenario():
        servers = make_servers(stores, peers)
        tasks = [asyncio.ensure_future(s.serve()) for s in servers]
        await asyncio.sleep(0.2)  # listeners up

        # A client releases the held transaction at the coordinator.
        host, port = peers[0]
        reply = await request(
            host, port, ServiceEnvelope(kind="submit", sender=-1)
        )
        assert reply.kind == "ack"

        await wait_decided([s.node for s in servers])
        decisions = {s.node.decision for s in servers}
        assert decisions == {1}

        # The status protocol is the recovery handshake: a state-query
        # from a client gets the decision back.
        reply = await request(
            host, port, ServiceEnvelope(kind="state-query", sender=-1)
        )
        assert reply.kind == "state-transfer"
        assert reply.body["decision"] == 1

        # Restart the coordinator over the same store: replay alone must
        # restore the decision, one incarnation later.
        servers[0].halt()
        tasks[0].cancel()
        await asyncio.gather(tasks[0], return_exceptions=True)

        restarted = make_servers(stores, peers)[0]
        tasks[0] = asyncio.ensure_future(restarted.serve())
        await wait_decided([restarted.node])
        assert restarted.node.decision == 1
        assert restarted.node.incarnation == 1

        for server in servers[1:] + [restarted]:
            server.halt()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    asyncio.run(scenario())
