"""Unit tests for WAL replay: deterministic re-execution of logged steps."""

import pytest

from repro.errors import WalError
from repro.service.recovery import NodeConfig, replay, state_digest


def config(pid=0, vote=1):
    return NodeConfig(pid=pid, n=3, t=1, K=4, vote=vote, tape_seed=99)


def init_record(cfg):
    return {"type": "init", "config": cfg.to_dict()}


def empty_steps(count):
    return [{"type": "step", "batch": []} for _ in range(count)]


class TestNodeConfig:
    def test_dict_roundtrip(self):
        cfg = config(pid=2, vote=0)
        assert NodeConfig.from_dict(cfg.to_dict()) == cfg


class TestReplayValidation:
    def test_empty_log_rejected(self):
        with pytest.raises(WalError):
            replay([])

    def test_first_record_must_be_init(self):
        with pytest.raises(WalError):
            replay([{"type": "step", "batch": []}])

    def test_duplicate_init_rejected(self):
        cfg = config()
        with pytest.raises(WalError):
            replay([init_record(cfg), init_record(cfg)])

    def test_config_mismatch_rejected(self):
        with pytest.raises(WalError):
            replay([init_record(config(pid=0))], expect_config=config(pid=1))

    def test_conflicting_decisions_rejected(self):
        records = [
            init_record(config()),
            {"type": "decision", "value": 1, "origin": "transfer"},
            {"type": "decision", "value": 0, "origin": "transfer"},
        ]
        with pytest.raises(WalError):
            replay(records)

    def test_digest_mismatch_rejected(self):
        records = [init_record(config())] + empty_steps(2)
        with pytest.raises(WalError):
            replay(records, verify_digest_at=(2, "not-the-digest"))


class TestReplaySemantics:
    def test_coordinator_regenerates_go_fanout(self):
        result = replay([init_record(config(pid=0))] + empty_steps(1))
        assert result.steps == 1
        recipients = {recipient for recipient, _ in result.outgoing}
        assert recipients  # the GO fan-out went out again
        seqs = [env.seq for _, env in result.outgoing]
        assert seqs == list(range(len(seqs)))  # dense per-incarnation seqs
        assert all(env.incarnation == 0 for _, env in result.outgoing)

    def test_recover_record_bumps_incarnation_and_resets_seq(self):
        records = (
            [init_record(config(pid=0))]
            + empty_steps(1)
            + [{"type": "recover"}]
            + empty_steps(1)
        )
        result = replay(records)
        assert result.incarnation == 1
        late = [env for _, env in result.outgoing if env.incarnation == 1]
        if late:
            assert min(env.seq for env in late) == 0

    def test_transfer_decision_adopted(self):
        records = [
            init_record(config(pid=1)),
            {"type": "decision", "value": 0, "origin": "transfer"},
        ]
        result = replay(records)
        assert result.transfer_decision == 0
        assert result.decision == 0

    def test_step_batches_land_in_dedup_set(self):
        records = [
            init_record(config(pid=1)),
            {"type": "step", "batch": [[0, 0, 4, []]]},
        ]
        result = replay(records)
        assert (0, 0, 4) in result.applied

    def test_submit_record_restores_submitted_flag(self):
        records = [init_record(config(pid=0)), {"type": "submit"}]
        assert replay(records).submitted

    def test_replay_is_deterministic(self):
        records = [init_record(config(pid=0))] + empty_steps(5)
        first = replay(records)
        second = replay(records)
        assert state_digest(first.process) == state_digest(second.process)

    def test_digest_checkpoint_accepts_true_digest(self):
        records = [init_record(config(pid=0))] + empty_steps(3)
        digest = state_digest(replay(records).process)
        again = replay(records, verify_digest_at=(3, digest))
        assert state_digest(again.process) == digest

    def test_digest_distinguishes_states(self):
        base = [init_record(config(pid=0))]
        assert state_digest(replay(base).process) != state_digest(
            replay(base + empty_steps(1)).process
        )
