"""Client connection hygiene and CLI pidfile handling.

The client helpers run inside long-lived tools (the crash demo polls
status in a loop), so a timed-out request must still release its
socket, and ``repro service kill`` must treat leftovers of an
already-dead node (stale pidfile) as a no-op rather than an error.
"""

import asyncio
import subprocess
import sys

import pytest

from repro.cli import main
from repro.service.client import _close_abandoned, request
from repro.service.wire import ServiceEnvelope


class TestConnectionHygiene:
    def test_timed_out_request_closes_the_connection(self):
        """A server that never replies must not be left holding the
        client's half-open socket after the read times out."""

        async def scenario():
            closed = asyncio.Event()

            async def handler(reader, writer):
                await reader.read()  # EOF arrives iff the client closes
                closed.set()
                writer.close()

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await request(
                        "127.0.0.1",
                        port,
                        ServiceEnvelope(kind="state-query", sender=-1),
                        timeout=0.2,
                    )
                await asyncio.wait_for(closed.wait(), timeout=5.0)
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_abandoned_connect_transport_is_closed(self):
        """When the connect completes in the same loop pass its timeout
        fires, the orphaned transport must still be closed."""

        class FakeWriter:
            closed = False

            def close(self):
                self.closed = True

        async def scenario():
            writer = FakeWriter()

            async def connect():
                return (None, writer)

            task = asyncio.ensure_future(connect())
            await task
            _close_abandoned(task)
            return writer.closed

        assert asyncio.run(scenario())

    def test_cancelled_or_failed_connect_is_a_noop(self):
        async def scenario():
            async def boom():
                raise OSError("refused")

            task = asyncio.ensure_future(boom())
            await asyncio.gather(task, return_exceptions=True)
            _close_abandoned(task)  # must not raise

        asyncio.run(scenario())


class TestKillPidfileHandling:
    def test_missing_pidfile_is_not_an_error(self, tmp_path, capsys):
        code = main(
            ["service", "kill", "--data-dir", str(tmp_path), "--node", "0"]
        )
        assert code == 0
        assert "nothing to kill" in capsys.readouterr().out

    def test_stale_pidfile_is_removed(self, tmp_path, capsys):
        # A real pid that is guaranteed dead: a just-reaped child.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        node_dir = tmp_path / "node0"
        node_dir.mkdir()
        pidfile = node_dir / "pid"
        pidfile.write_text(f"{proc.pid}\n")
        code = main(
            ["service", "kill", "--data-dir", str(tmp_path), "--node", "0"]
        )
        assert code == 0
        assert "stale pidfile removed" in capsys.readouterr().out
        assert not pidfile.exists()

    def test_unreadable_pidfile_still_errors(self, tmp_path, capsys):
        node_dir = tmp_path / "node0"
        node_dir.mkdir()
        (node_dir / "pid").write_text("not-a-pid\n")
        code = main(
            ["service", "kill", "--data-dir", str(tmp_path), "--node", "0"]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err
