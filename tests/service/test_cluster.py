"""Integration tests: service clusters under kill/recover schedules.

Everything here runs on the virtual clock — whole cluster lifetimes
(including crash-recovery campaigns' worth of restarts) execute in
milliseconds of real time.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import CrashFault, FaultPlan
from repro.runtime.virtualtime import run_virtual
from repro.service.cluster import ServiceCluster, node_configs
from repro.service.node import ServiceNode
from repro.service.recovery import replay, state_digest
from repro.service.wal import (
    MemoryWalStore,
    decode_line,
    durable_records,
    write_snapshot,
)
from repro.service.wire import ServiceEnvelope

N, T, K = 5, 2, 4


def run_cluster(votes, plan=None, seed=0, deadline=5.0, **kwargs):
    configs = node_configs(len(votes), T, votes, K, seed)
    cluster = ServiceCluster(configs, plan, seed=seed, K=K, **kwargs)
    result = run_virtual(cluster.run(deadline=deadline))
    return cluster, result


class TestValidation:
    def test_vote_count_must_match_n(self):
        with pytest.raises(ConfigurationError):
            node_configs(5, T, [1, 1], K, seed=0)

    def test_store_count_must_match_nodes(self):
        configs = node_configs(3, 1, [1, 1, 1], K, seed=0)
        with pytest.raises(ConfigurationError):
            ServiceCluster(configs, stores=[MemoryWalStore()])


class TestFaultFreeRuns:
    def test_all_commit(self):
        _, result = run_cluster([1] * N)
        assert result.terminated
        assert result.decision_values() == {1}

    def test_single_no_vote_aborts(self):
        _, result = run_cluster([1, 1, 0, 1, 1])
        assert result.terminated
        assert result.decision_values() == {0}

    def test_durable_log_replays_to_live_state(self):
        cluster, result = run_cluster([1] * N)
        assert result.terminated
        for pid in range(N):
            replayed = replay(durable_records(cluster.stores[pid]).records)
            live = cluster.nodes[pid].process
            assert state_digest(replayed.process) == state_digest(live)


class TestKillRecover:
    def test_coordinator_and_participant_recover_mid_commit(self):
        plan = FaultPlan(
            n=N,
            crashes=(
                CrashFault(pid=0, cycle=3, recover_cycle=12),
                CrashFault(pid=3, cycle=5, recover_cycle=20),
            ),
        )
        cluster, result = run_cluster([1] * N, plan, seed=11, deadline=8.0)
        assert result.terminated
        assert result.consistent
        assert result.decision_values() == {1}
        assert result.recoveries == 2
        assert result.permanently_crashed == set()
        assert any(s.incarnation > 0 for s in result.nodes)

    def test_recovered_participant_joins_abort(self):
        plan = FaultPlan(
            n=N, crashes=(CrashFault(pid=2, cycle=2, recover_cycle=15),)
        )
        _, result = run_cluster([1, 1, 0, 1, 1], plan, seed=3, deadline=8.0)
        assert result.terminated
        assert result.decision_values() == {0}

    def test_permanent_coordinator_crash_at_start_blocks(self):
        plan = FaultPlan(n=N, crashes=(CrashFault(pid=0, cycle=0),))
        _, result = run_cluster([1] * N, plan, seed=5, deadline=1.0)
        assert not result.terminated
        assert result.permanently_crashed == {0}
        assert result.consistent  # blocked, but never inconsistent

    def test_torn_tail_injection_is_repaired(self):
        plan = FaultPlan(
            n=N, crashes=(CrashFault(pid=1, cycle=4, recover_cycle=10),)
        )
        cluster, result = run_cluster(
            [1] * N, plan, seed=2, deadline=8.0, torn_tail_probability=1.0
        )
        assert result.terminated
        assert result.decision_values() == {1}
        # The injected partial line was truncated by the restarted node.
        assert not durable_records(cluster.stores[1]).torn_tail

    def test_snapshot_compaction_preserves_recovery(self):
        plan = FaultPlan(
            n=N, crashes=(CrashFault(pid=4, cycle=6, recover_cycle=14),)
        )
        cluster, result = run_cluster(
            [1] * N, plan, seed=9, deadline=8.0, snapshot_every=5
        )
        assert result.terminated
        assert result.decision_values() == {1}
        for pid in range(N):
            replayed = replay(durable_records(cluster.stores[pid]).records)
            assert replayed.decision == 1


class TestStateTransfer:
    def test_undecided_node_adopts_transferred_decision(self):
        sent = []

        async def scenario():
            cfg = node_configs(3, 1, [1, 1, 1], K, seed=0)[1]
            node = ServiceNode(
                cfg,
                MemoryWalStore(),
                lambda recipient, env, attempt: sent.append((recipient, env)),
                fsync=False,
            )
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.05)
            assert node.decision is None  # alone, the protocol cannot decide
            node.deliver(
                ServiceEnvelope(
                    kind="state-transfer", sender=0, body={"decision": 1}
                )
            )
            await asyncio.sleep(0.05)
            node.halt()
            runner.cancel()
            await asyncio.gather(runner, return_exceptions=True)
            return node

        node = run_virtual(scenario())
        assert node.decision == 1
        snapshot = node.snapshot_state()
        assert snapshot.decision_origin == "transfer"
        # The adoption is durable: a restart replays to the same decision.
        assert replay(durable_records(node.store).records).decision == 1


async def _one_life(config, store, duration):
    """Run one ServiceNode life over ``store`` for ``duration`` seconds."""
    node = ServiceNode(
        config, store, lambda recipient, env, attempt: None, fsync=False
    )
    runner = asyncio.ensure_future(node.run())
    await asyncio.sleep(duration)
    node.halt()
    runner.cancel()
    await asyncio.gather(runner, return_exceptions=True)
    return node


class TestCompactionWindowRecovery:
    def test_kill_inside_compaction_window_recovers(self):
        """A SIGKILL between the snapshot replace and the log truncation
        must not brick the node (REVIEW: duplicate init on replay)."""
        cfg = node_configs(3, 1, [1, 1, 1], K, seed=0)[0]
        store = MemoryWalStore()

        async def scenario():
            await _one_life(cfg, store, 0.05)
            # Reconstruct the window's disk state: snapshot durably
            # replaced, log never truncated (still headed by init).
            pre_lines = store.read_lines()
            records = durable_records(store).records
            replayed = replay(records)
            write_snapshot(
                store,
                records,
                digest=state_digest(replayed.process),
                taken_at_step=replayed.steps,
            )
            store.truncate_lines(0)
            for line in pre_lines:
                store.append_line(line)

            second = await _one_life(cfg, store, 0.05)
            third = await _one_life(cfg, store, 0.05)
            return second, third

        second, third = run_virtual(scenario())
        # The second life recovered (replay did not raise on the
        # duplicated records) and repaired the log in place...
        assert second.recovered
        assert second.incarnation == 1
        head = decode_line(store.read_lines()[0])
        assert head["type"] == "compact"
        # ...durably: the third life replays the repaired store and sees
        # the second life's records rather than discarding them.
        assert third.recovered
        assert third.incarnation == 2

    def test_repeated_window_crashes_are_idempotent(self):
        cfg = node_configs(3, 1, [1, 1, 1], K, seed=0)[0]
        store = MemoryWalStore()

        async def scenario():
            await _one_life(cfg, store, 0.05)
            records = durable_records(store).records
            replayed = replay(records)
            write_snapshot(
                store,
                records,
                digest=state_digest(replayed.process),
                taken_at_step=replayed.steps,
            )
            # Kill again right after truncation but before the marker
            # lands: the log is simply empty.
            store.truncate_lines(0)
            return await _one_life(cfg, store, 0.05)

        node = run_virtual(scenario())
        assert node.recovered
        assert node.incarnation == 1
        assert replay(durable_records(store).records).incarnation == 1


class TestNodeRobustness:
    def test_malformed_ack_bodies_are_dropped(self):
        cfg = node_configs(3, 1, [1, 1, 1], K, seed=0)[1]
        node = ServiceNode(
            cfg, MemoryWalStore(), lambda *args: None, fsync=False
        )
        node._absorb(ServiceEnvelope(kind="ack", sender=0, body={}))
        node._absorb(ServiceEnvelope(kind="ack", sender=0, body={"seq": "x"}))
        node._absorb(
            ServiceEnvelope(
                kind="ack", sender=0, body={"seq": 1, "incarnation": None}
            )
        )
        assert node._acked == {}
        node._absorb(ServiceEnvelope(kind="ack", sender=0, body={"seq": 3}))
        assert (0, 0, 3) in node._acked

    def test_decided_node_stops_logging_idle_steps(self):
        cfg = node_configs(3, 1, [1, 1, 1], K, seed=0)[1]
        store = MemoryWalStore()

        async def scenario():
            node = ServiceNode(
                cfg, store, lambda recipient, env, attempt: None, fsync=False
            )
            runner = asyncio.ensure_future(node.run())
            await asyncio.sleep(0.05)
            undecided_records = len(store.read_lines())
            node.deliver(
                ServiceEnvelope(
                    kind="state-transfer", sender=0, body={"decision": 1}
                )
            )
            await asyncio.sleep(0.05)
            baseline = len(store.read_lines())
            await asyncio.sleep(1.0)  # hundreds of idle ticks
            grown = len(store.read_lines()) - baseline
            node.halt()
            runner.cancel()
            await asyncio.gather(runner, return_exceptions=True)
            return undecided_records, grown

        undecided_records, grown = run_virtual(scenario())
        assert undecided_records > 1  # undecided nodes do log idle steps
        assert grown == 0  # the decided serve-only tail appends nothing
