"""Unit tests for the write-ahead log: checksums, torn tails, snapshots."""

import json

import pytest

from repro.errors import WalError
from repro.service.wal import (
    FileWalStore,
    MemoryWalStore,
    WriteAheadLog,
    decode_line,
    durable_records,
    encode_record,
    read_log,
    read_snapshot,
    reset_log_after_compaction,
    split_log_suffix,
    write_snapshot,
)


def records(count):
    return [{"type": "step", "batch": [], "i": i} for i in range(count)]


class TestRecordCodec:
    def test_roundtrip(self):
        record = {"type": "vote", "value": 1}
        assert decode_line(encode_record(record)) == record

    def test_tampered_payload_rejected(self):
        line = encode_record({"type": "vote", "value": 1})
        tampered = line.replace('"value":1', '"value":0')
        assert tampered != line
        assert decode_line(tampered) is None

    def test_partial_line_rejected(self):
        line = encode_record({"type": "step", "batch": []})
        for cut in (1, len(line) // 2, len(line) - 2):
            assert decode_line(line[:cut]) is None


class TestReadLog:
    def test_reads_valid_records_in_order(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        result = read_log(store)
        assert [r["i"] for r in result.records] == [0, 1, 2]
        assert result.valid_lines == 3
        assert not result.torn_tail

    def test_torn_tail_recovers_valid_prefix(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        store.tear_tail(keep_bytes=10)
        result = read_log(store)
        assert [r["i"] for r in result.records] == [0, 1]
        assert result.torn_tail

    def test_valid_record_after_invalid_line_is_corruption(self):
        store = MemoryWalStore()
        store.append_line("garbage")
        store.append_line(encode_record({"type": "step", "batch": []}))
        with pytest.raises(WalError):
            read_log(store)

    def test_open_repairing_truncates_torn_tail(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(2))
        store.append_line('{"c": 0, "r": {"type"')  # partial append
        result = wal.open_repairing()
        assert result.torn_tail
        wal.append({"type": "step", "batch": [], "i": 2})
        clean = read_log(store)
        assert not clean.torn_tail
        assert [r["i"] for r in clean.records] == [0, 1, 2]


class TestFileStore:
    def test_appends_survive_reopen(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        WriteAheadLog(store).append_all(records(4))
        store.close()
        again = FileWalStore(tmp_path / "node0")
        assert [r["i"] for r in read_log(again).records] == [0, 1, 2, 3]
        again.close()

    def test_torn_tail_repair_persists(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        WriteAheadLog(store).append_all(records(2))
        with open(store.log_path, "a") as f:
            f.write(encode_record({"type": "step", "batch": []})[:11])
        store.close()

        damaged = FileWalStore(tmp_path / "node0")
        assert WriteAheadLog(damaged).open_repairing().torn_tail
        damaged.close()
        clean = FileWalStore(tmp_path / "node0")
        result = read_log(clean)
        clean.close()
        assert not result.torn_tail
        assert result.valid_lines == 2

    def test_snapshot_roundtrip(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        write_snapshot(store, records(5), digest="d" * 64, taken_at_step=5)
        doc = read_snapshot(store)
        assert doc["taken_at_step"] == 5
        assert len(doc["records"]) == 5
        # Compaction truncates the log down to its marker record.
        heads = [decode_line(line) for line in store.read_lines()]
        assert heads == [{"type": "compact", "at": 5}]
        store.close()


class TestSnapshots:
    def test_corrupted_snapshot_rejected(self):
        store = MemoryWalStore()
        write_snapshot(store, records(2), digest="x", taken_at_step=2)
        envelope = json.loads(store.read_snapshot())
        envelope["d"]["taken_at_step"] = 99
        store.write_snapshot(json.dumps(envelope))
        with pytest.raises(WalError):
            read_snapshot(store)

    def test_missing_snapshot_is_none(self):
        assert read_snapshot(MemoryWalStore()) is None

    def test_durable_records_is_snapshot_plus_suffix(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=3
        )
        wal.append({"type": "step", "batch": [], "i": 3})
        combined = durable_records(store)
        assert [r["i"] for r in combined.records] == [0, 1, 2, 3]


def _undo_truncation(store, pre_lines):
    """Reconstruct the disk a SIGKILL inside the compaction window leaves:
    the snapshot is durably replaced, but the log was never truncated."""
    store.truncate_lines(0)
    for line in pre_lines:
        store.append_line(line)


class TestCompactionWindow:
    def test_split_log_suffix_strips_matching_marker(self):
        snapshot = {"taken_at_step": 5}
        tail = [{"type": "compact", "at": 5}, {"type": "recover"}]
        suffix, has_marker = split_log_suffix(snapshot, tail)
        assert has_marker
        assert suffix == [{"type": "recover"}]
        suffix, has_marker = split_log_suffix(snapshot, [])
        assert not has_marker
        assert suffix == []

    def test_stale_precompaction_log_is_discarded(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        pre_lines = store.read_lines()
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=3
        )
        _undo_truncation(store, pre_lines)
        # Every stale log record is already inside the snapshot; nothing
        # may be replayed twice.
        combined = durable_records(store)
        assert [r["i"] for r in combined.records] == [0, 1, 2]

    def test_stale_marker_of_previous_snapshot_is_discarded(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=3
        )
        wal.append({"type": "step", "batch": [], "i": 3})
        pre_lines = store.read_lines()  # [marker@3, step 3]
        write_snapshot(store, records(4), digest="x", taken_at_step=4)
        _undo_truncation(store, pre_lines)
        combined = durable_records(store)
        assert [r["i"] for r in combined.records] == [0, 1, 2, 3]

    def test_repair_reestablishes_marker(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(2))
        pre_lines = store.read_lines()
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=2
        )
        _undo_truncation(store, pre_lines)
        reset_log_after_compaction(store, taken_at_step=2)
        heads = [decode_line(line) for line in store.read_lines()]
        assert heads == [{"type": "compact", "at": 2}]
        # Post-repair appends land after the marker and survive reads.
        wal.append({"type": "step", "batch": [], "i": 2})
        combined = durable_records(store)
        assert [r["i"] for r in combined.records] == [0, 1, 2]

    def test_window_crash_on_file_store(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        wal = WriteAheadLog(store)
        wal.append_all(records(3))
        pre_lines = store.read_lines()
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=3
        )
        _undo_truncation(store, pre_lines)
        store.close()
        again = FileWalStore(tmp_path / "node0")
        combined = durable_records(again)
        again.close()
        assert [r["i"] for r in combined.records] == [0, 1, 2]
