"""Unit tests for the write-ahead log: checksums, torn tails, snapshots."""

import json

import pytest

from repro.errors import WalError
from repro.service.wal import (
    FileWalStore,
    MemoryWalStore,
    WriteAheadLog,
    decode_line,
    durable_records,
    encode_record,
    read_log,
    read_snapshot,
    write_snapshot,
)


def records(count):
    return [{"type": "step", "batch": [], "i": i} for i in range(count)]


class TestRecordCodec:
    def test_roundtrip(self):
        record = {"type": "vote", "value": 1}
        assert decode_line(encode_record(record)) == record

    def test_tampered_payload_rejected(self):
        line = encode_record({"type": "vote", "value": 1})
        tampered = line.replace('"value":1', '"value":0')
        assert tampered != line
        assert decode_line(tampered) is None

    def test_partial_line_rejected(self):
        line = encode_record({"type": "step", "batch": []})
        for cut in (1, len(line) // 2, len(line) - 2):
            assert decode_line(line[:cut]) is None


class TestReadLog:
    def test_reads_valid_records_in_order(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        result = read_log(store)
        assert [r["i"] for r in result.records] == [0, 1, 2]
        assert result.valid_lines == 3
        assert not result.torn_tail

    def test_torn_tail_recovers_valid_prefix(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        store.tear_tail(keep_bytes=10)
        result = read_log(store)
        assert [r["i"] for r in result.records] == [0, 1]
        assert result.torn_tail

    def test_valid_record_after_invalid_line_is_corruption(self):
        store = MemoryWalStore()
        store.append_line("garbage")
        store.append_line(encode_record({"type": "step", "batch": []}))
        with pytest.raises(WalError):
            read_log(store)

    def test_open_repairing_truncates_torn_tail(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(2))
        store.append_line('{"c": 0, "r": {"type"')  # partial append
        result = wal.open_repairing()
        assert result.torn_tail
        wal.append({"type": "step", "batch": [], "i": 2})
        clean = read_log(store)
        assert not clean.torn_tail
        assert [r["i"] for r in clean.records] == [0, 1, 2]


class TestFileStore:
    def test_appends_survive_reopen(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        WriteAheadLog(store).append_all(records(4))
        store.close()
        again = FileWalStore(tmp_path / "node0")
        assert [r["i"] for r in read_log(again).records] == [0, 1, 2, 3]
        again.close()

    def test_torn_tail_repair_persists(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        WriteAheadLog(store).append_all(records(2))
        with open(store.log_path, "a") as f:
            f.write(encode_record({"type": "step", "batch": []})[:11])
        store.close()

        damaged = FileWalStore(tmp_path / "node0")
        assert WriteAheadLog(damaged).open_repairing().torn_tail
        damaged.close()
        clean = FileWalStore(tmp_path / "node0")
        result = read_log(clean)
        clean.close()
        assert not result.torn_tail
        assert result.valid_lines == 2

    def test_snapshot_roundtrip(self, tmp_path):
        store = FileWalStore(tmp_path / "node0")
        write_snapshot(store, records(5), digest="d" * 64, taken_at_step=5)
        doc = read_snapshot(store)
        assert doc["taken_at_step"] == 5
        assert len(doc["records"]) == 5
        assert store.read_lines() == []  # log truncated by compaction
        store.close()


class TestSnapshots:
    def test_corrupted_snapshot_rejected(self):
        store = MemoryWalStore()
        write_snapshot(store, records(2), digest="x", taken_at_step=2)
        envelope = json.loads(store.read_snapshot())
        envelope["d"]["taken_at_step"] = 99
        store.write_snapshot(json.dumps(envelope))
        with pytest.raises(WalError):
            read_snapshot(store)

    def test_missing_snapshot_is_none(self):
        assert read_snapshot(MemoryWalStore()) is None

    def test_durable_records_is_snapshot_plus_suffix(self):
        store = MemoryWalStore()
        wal = WriteAheadLog(store, fsync=False)
        wal.append_all(records(3))
        write_snapshot(
            store, read_log(store).records, digest="x", taken_at_step=3
        )
        wal.append({"type": "step", "batch": [], "i": 3})
        combined = durable_records(store)
        assert [r["i"] for r in combined.records] == [0, 1, 2, 3]
