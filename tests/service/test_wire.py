"""Unit tests for the service wire codecs: payloads and envelopes."""

import pytest

from repro.core.messages import (
    DecidedMessage,
    GoMessage,
    StageMessage,
    VoteMessage,
)
from repro.errors import ServiceError
from repro.service.wire import (
    ServiceEnvelope,
    payload_from_dict,
    payload_to_dict,
)
from repro.sim.message import RawPayload

PAYLOADS = [
    GoMessage(coins=(1, 0, 1, 1)),
    VoteMessage(vote=1),
    StageMessage(phase=2, stage=1, value=0),
    DecidedMessage(value=1),
    RawPayload(data="ping"),
]


class TestPayloadCodec:
    @pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: type(p).__name__)
    def test_roundtrip(self, payload):
        assert payload_from_dict(payload_to_dict(payload)) == payload

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            payload_from_dict({"k": "mystery"})


class TestEnvelope:
    def test_roundtrip_with_payloads(self):
        envelope = ServiceEnvelope(
            kind="msg",
            sender=2,
            incarnation=1,
            seq=7,
            payloads=tuple(PAYLOADS),
        )
        assert ServiceEnvelope.decode(envelope.encode()) == envelope

    def test_roundtrip_control_body(self):
        envelope = ServiceEnvelope(
            kind="ack", sender=0, body={"incarnation": 0, "seq": 3}
        )
        again = ServiceEnvelope.decode(envelope.encode())
        assert again.body == {"incarnation": 0, "seq": 3}
        assert again.payloads == ()

    def test_identity_is_sender_incarnation_seq(self):
        envelope = ServiceEnvelope(kind="msg", sender=3, incarnation=2, seq=9)
        assert envelope.identity == (3, 2, 9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError):
            ServiceEnvelope(kind="gossip", sender=0)

    def test_undecodable_line_rejected(self):
        with pytest.raises(ServiceError):
            ServiceEnvelope.decode(b"not json\n")

    def test_malformed_doc_rejected(self):
        with pytest.raises(ServiceError):
            ServiceEnvelope.decode(b'{"kind": "msg"}\n')

    def test_encoding_is_one_line(self):
        line = ServiceEnvelope(kind="state-query", sender=-1).encode()
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
