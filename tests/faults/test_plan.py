"""Unit tests for the FaultPlan DSL: validation, queries, serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    LinkDelay,
    LinkLoss,
    PartitionWindow,
)


class TestValidation:
    def test_rejects_out_of_range_crash_pid(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(n=3, crashes=(CrashFault(pid=3, cycle=0),))

    def test_rejects_double_crash(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                n=3,
                crashes=(CrashFault(0, 1), CrashFault(0, 2)),
            )

    def test_rejects_crashing_everyone(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                n=2,
                crashes=(CrashFault(0, 0), CrashFault(1, 0)),
            )

    def test_rejects_certain_drop(self):
        with pytest.raises(ConfigurationError):
            LinkLoss(drop=1.0)

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LinkLoss(duplicate=1.5)

    def test_rejects_unhealing_partition(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(groups=((0,),), start_cycle=5, heal_cycle=2)

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(groups=((0, 1), (1, 2)), start_cycle=0, heal_cycle=1)

    def test_rejects_partition_pid_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(
                n=2,
                partitions=(
                    PartitionWindow(groups=((5,),), start_cycle=0, heal_cycle=1),
                ),
            )

    def test_rejects_bad_link_delay_bounds(self):
        with pytest.raises(ConfigurationError):
            LinkDelay(sender=0, recipient=1, min_cycles=4, max_cycles=2)


class TestQueries:
    def test_partition_severs_cross_group_only_inside_window(self):
        window = PartitionWindow(groups=((0, 1),), start_cycle=2, heal_cycle=5)
        assert window.severs(0, 2, cycle=3)
        assert not window.severs(0, 1, cycle=3)  # same group
        assert not window.severs(0, 2, cycle=1)  # before
        assert not window.severs(0, 2, cycle=5)  # healed
        assert window.severs(2, 0, cycle=4)  # implicit group <-> listed

    def test_loss_override_shadows_default(self):
        override = LinkLoss(drop=0.5)
        plan = FaultPlan(
            n=3,
            loss=LinkLoss(drop=0.1),
            link_loss=((0, 1, override),),
        )
        assert plan.loss_for(0, 1) is override
        assert plan.loss_for(1, 0).drop == 0.1

    def test_within_budget(self):
        plan = FaultPlan(n=5, crashes=(CrashFault(1, 0), CrashFault(2, 0)))
        assert plan.within_budget(2)
        assert not plan.within_budget(1)

    def test_guarantees_termination_excludes_early_coordinator_crash(self):
        blocked = FaultPlan(n=5, crashes=(CrashFault(pid=0, cycle=0),))
        assert blocked.within_budget(2)
        assert not blocked.guarantees_termination(2)
        after_fanout = FaultPlan(n=5, crashes=(CrashFault(pid=0, cycle=1),))
        assert after_fanout.guarantees_termination(2)
        follower = FaultPlan(n=5, crashes=(CrashFault(pid=3, cycle=0),))
        assert follower.guarantees_termination(2)

    def test_guarantees_termination_excludes_stranded_coordinator(self):
        # A partition that severs the coordinator BEFORE its crash can
        # strand the GO fan-out: retransmission dies with the sender and
        # nobody relays, so participants legitimately block forever.
        stranded = FaultPlan(
            n=5,
            crashes=(CrashFault(pid=0, cycle=5),),
            partitions=(
                PartitionWindow(
                    groups=((1, 2, 3, 4),), start_cycle=0, heal_cycle=8
                ),
            ),
        )
        assert stranded.within_budget(2)
        assert not stranded.guarantees_termination(2)
        # Severing only after the crash cycle is fine: the fan-out (and
        # its retransmissions up to the crash) already escaped.
        late_window = FaultPlan(
            n=5,
            crashes=(CrashFault(pid=0, cycle=5),),
            partitions=(
                PartitionWindow(
                    groups=((1, 2, 3, 4),), start_cycle=5, heal_cycle=8
                ),
            ),
        )
        assert late_window.guarantees_termination(2)
        # A pre-crash window that never severs the coordinator (it sits
        # inside the listed group) does not threaten the fan-out either.
        coordinator_grouped = FaultPlan(
            n=5,
            crashes=(CrashFault(pid=0, cycle=5),),
            partitions=(
                PartitionWindow(
                    groups=((0, 1, 2, 3, 4),), start_cycle=0, heal_cycle=8
                ),
            ),
        )
        assert coordinator_grouped.guarantees_termination(2)

    def test_last_disruption_cycle(self):
        plan = FaultPlan(
            n=4,
            crashes=(CrashFault(1, 7),),
            partitions=(
                PartitionWindow(groups=((0,),), start_cycle=2, heal_cycle=11),
            ),
        )
        assert plan.last_disruption_cycle == 11


class TestSerialization:
    def test_roundtrip_preserves_plan(self):
        plan = FaultPlan.random(n=6, t=2, seed=99)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_roundtrip_through_json(self):
        import json

        plan = FaultPlan.random(n=5, t=2, seed=7, over_budget=True)
        rebuilt = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert rebuilt == plan

    def test_dict_form_is_stable(self):
        plan = FaultPlan.random(n=5, t=2, seed=3)
        assert plan.to_dict() == plan.to_dict()


class TestRandom:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(n=5, t=2, seed=11)
        b = FaultPlan.random(n=5, t=2, seed=11)
        assert a == b

    def test_different_seeds_vary(self):
        plans = {FaultPlan.random(n=5, t=2, seed=s).to_dict().__str__() for s in range(20)}
        assert len(plans) > 1

    def test_within_budget_respects_t(self):
        for seed in range(50):
            plan = FaultPlan.random(n=5, t=2, seed=seed)
            assert plan.crash_count <= 2
            assert plan.guarantees_termination(2)

    def test_over_budget_exceeds_t(self):
        for seed in range(20):
            plan = FaultPlan.random(n=5, t=2, seed=seed, over_budget=True)
            assert 2 < plan.crash_count <= 4

    def test_partitions_always_heal(self):
        for seed in range(50):
            plan = FaultPlan.random(n=5, t=2, seed=seed)
            for window in plan.partitions:
                assert window.heal_cycle > window.start_cycle


class TestCrashRecovery:
    def test_recover_cycle_must_follow_crash_cycle(self):
        with pytest.raises(ConfigurationError):
            CrashFault(pid=1, cycle=5, recover_cycle=5)
        with pytest.raises(ConfigurationError):
            CrashFault(pid=1, cycle=5, recover_cycle=3)

    def test_permanent_classification(self):
        assert CrashFault(pid=1, cycle=5).permanent
        assert not CrashFault(pid=1, cycle=5, recover_cycle=9).permanent

    def test_budget_counts_only_permanent_crashes(self):
        plan = FaultPlan(
            n=5,
            crashes=(
                CrashFault(pid=1, cycle=0),
                CrashFault(pid=2, cycle=0, recover_cycle=4),
                CrashFault(pid=3, cycle=1, recover_cycle=6),
            ),
        )
        assert plan.crash_count == 3
        assert plan.permanent_crash_count == 1
        assert plan.has_recoveries
        assert plan.within_budget(1)
        assert not plan.within_budget(0)

    def test_recovering_coordinator_keeps_termination_guarantee(self):
        # Fail-stop, a cycle-0 coordinator crash voids termination (the
        # GO fan-out never happens); with a scheduled recovery the
        # coordinator replays its WAL and still drives the commit home.
        fail_stop = FaultPlan(n=5, crashes=(CrashFault(pid=0, cycle=0),))
        assert not fail_stop.guarantees_termination(2)
        recovering = FaultPlan(
            n=5, crashes=(CrashFault(pid=0, cycle=0, recover_cycle=6),)
        )
        assert recovering.guarantees_termination(2)

    def test_dict_roundtrip_with_recoveries(self):
        plan = FaultPlan(
            n=5,
            crashes=(
                CrashFault(pid=1, cycle=2),
                CrashFault(pid=3, cycle=4, recover_cycle=11),
            ),
        )
        doc = plan.to_dict()
        crash_docs = {c["pid"]: c for c in doc["crashes"]}
        assert "recover_cycle" not in crash_docs[1]  # fail-stop form stable
        assert crash_docs[3]["recover_cycle"] == 11
        assert FaultPlan.from_dict(doc) == plan

    def test_zero_recovery_probability_reproduces_historical_stream(self):
        for seed in range(30):
            assert FaultPlan.random(
                n=5, t=2, seed=seed, recovery_probability=0.0
            ) == FaultPlan.random(n=5, t=2, seed=seed)

    def test_recovery_draws_leave_link_faults_untouched(self):
        for seed in range(30):
            base = FaultPlan.random(n=5, t=2, seed=seed)
            recovering = FaultPlan.random(
                n=5, t=2, seed=seed, recovery_probability=1.0
            )
            assert recovering.loss == base.loss
            assert recovering.link_loss == base.link_loss
            assert recovering.link_delays == base.link_delays
            assert recovering.partitions == base.partitions
            assert all(not c.permanent for c in recovering.crashes)
            assert {c.pid for c in recovering.crashes} == {
                c.pid for c in base.crashes
            }

    def test_recovering_plans_always_terminate(self):
        for seed in range(30):
            plan = FaultPlan.random(
                n=5, t=2, seed=seed, recovery_probability=1.0
            )
            assert plan.permanent_crash_count == 0
            assert plan.within_budget(0)
            assert plan.guarantees_termination(2)
