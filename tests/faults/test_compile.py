"""Tests for compiling FaultPlans to each execution track."""

import random

from repro.adversary.base import CrashAt
from repro.core.commit import CommitProgram
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    LinkLoss,
    PartitionWindow,
)
from repro.faults.runtime_compile import (
    PlanLinkFaults,
    compile_to_runtime,
    plan_reliability,
)
from repro.faults.sim_compile import compile_to_adversary
from repro.sim.scheduler import Simulation
from repro.types import Decision


def commit_programs(votes, t=2, K=4):
    return [
        CommitProgram(
            pid=pid,
            n=len(votes),
            t=t,
            initial_vote=vote,
            K=K,
            allow_sub_resilience=True,
        )
        for pid, vote in enumerate(votes)
    ]


class TestSimCompile:
    def test_crash_plan_is_translated(self):
        plan = FaultPlan(
            n=5, crashes=(CrashFault(pid=3, cycle=2), CrashFault(pid=4, cycle=5))
        )
        adversary = compile_to_adversary(plan)
        assert sorted(adversary.crash_plan, key=lambda c: c.pid) == [
            CrashAt(pid=3, cycle=2),
            CrashAt(pid=4, cycle=5),
        ]

    def test_clean_plan_terminates_with_commit(self):
        plan = FaultPlan(n=5, seed=4)
        simulation = Simulation(
            programs=commit_programs([1] * 5),
            adversary=compile_to_adversary(plan),
            K=4,
            t=2,
            seed=4,
            max_steps=20_000,
        )
        result = simulation.run()
        assert result.terminated
        assert set(result.decisions().values()) == {int(Decision.COMMIT)}

    def test_lossy_partitioned_plan_still_terminates(self):
        # Drops become finite holds and partitions heal, so a
        # within-budget plan must still terminate.
        plan = FaultPlan(
            n=5,
            seed=8,
            crashes=(CrashFault(pid=4, cycle=3),),
            partitions=(
                PartitionWindow(groups=((0, 1),), start_cycle=2, heal_cycle=9),
            ),
            loss=LinkLoss(drop=0.3, duplicate=0.2, reorder=0.3),
        )
        simulation = Simulation(
            programs=commit_programs([1] * 5),
            adversary=compile_to_adversary(plan),
            K=4,
            t=2,
            seed=8,
            max_steps=40_000,
        )
        result = simulation.run()
        assert result.terminated
        decided = {b for b in result.decisions().values() if b is not None}
        assert len(decided) == 1

    def test_same_plan_same_trace(self):
        plan = FaultPlan.random(n=5, t=2, seed=21)

        def run_once():
            sim = Simulation(
                programs=commit_programs([1, 1, 0, 1, 1]),
                adversary=compile_to_adversary(plan),
                K=4,
                t=2,
                seed=21,
                max_steps=20_000,
            )
            result = sim.run()
            return result.decisions(), result.run.event_count

        assert run_once() == run_once()


class TestRuntimeCompile:
    def test_crash_injections_scale_by_tick(self):
        plan = FaultPlan(n=4, crashes=(CrashFault(pid=2, cycle=10),))
        _, crashes, _ = compile_to_runtime(plan, tick_interval=0.01)
        assert len(crashes) == 1
        assert crashes[0].pid == 2
        assert crashes[0].after_seconds == 0.1

    def test_reliability_scales_by_tick(self):
        config = plan_reliability(0.01)
        assert config.base_timeout == 0.06
        assert config.max_retries is None

    def test_severed_link_always_drops(self):
        plan = FaultPlan(
            n=4,
            partitions=(
                PartitionWindow(groups=((0, 1),), start_cycle=0, heal_cycle=50),
            ),
        )
        policy = PlanLinkFaults(plan, tick_interval=0.01)
        rng = random.Random(0)
        verdict = policy.verdict(0, 2, now=0.2, rng=rng)  # cycle 20, severed
        assert verdict.drop
        same_group = policy.verdict(0, 1, now=0.2, rng=rng)
        assert not same_group.drop

    def test_healed_link_stops_dropping(self):
        plan = FaultPlan(
            n=4,
            partitions=(
                PartitionWindow(groups=((0, 1),), start_cycle=0, heal_cycle=5),
            ),
        )
        policy = PlanLinkFaults(plan, tick_interval=0.01)
        rng = random.Random(0)
        assert not policy.verdict(0, 2, now=0.06, rng=rng).drop  # cycle 6

    def test_lossless_plan_yields_clean_verdicts(self):
        plan = FaultPlan(n=3)
        policy = PlanLinkFaults(plan, tick_interval=0.01)
        rng = random.Random(1)
        for _ in range(20):
            verdict = policy.verdict(0, 1, now=0.0, rng=rng)
            assert not verdict.drop
            assert verdict.duplicates == 0
            assert verdict.extra_delay == 0.0
