"""Campaign runner tests: determinism, schema, safety accounting."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    render_campaign_summary,
    run_campaign,
    run_campaign_trial,
    write_campaign_report,
)
from repro.runtime.cluster import NONTERMINATED, TERMINATED

# Small but real: both tracks, a handful of plans.
QUICK = CampaignConfig(n=5, plans=4, base_seed=31)


@pytest.fixture(scope="module")
def quick_report():
    return run_campaign(QUICK, workers=1)


class TestConfig:
    def test_default_budget_is_optimum(self):
        assert CampaignConfig(n=5).resolved_t == 2
        assert CampaignConfig(n=5, t=1).resolved_t == 1

    def test_rejects_unknown_track(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(tracks=("sim", "tcp"))

    def test_rejects_empty_sweep(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(plans=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(over_budget_fraction=1.5)


class TestTrial:
    def test_trial_is_deterministic(self):
        a = run_campaign_trial(QUICK, 31)
        b = run_campaign_trial(QUICK, 31)
        assert a == b

    def test_trial_record_is_json_safe(self):
        record = run_campaign_trial(QUICK, 33)
        assert json.loads(json.dumps(record)) == record

    def test_trial_runs_requested_tracks_only(self):
        config = CampaignConfig(n=5, plans=1, base_seed=0, tracks=("sim",))
        record = run_campaign_trial(config, 0)
        assert set(record["tracks"]) == {"sim"}


class TestReport:
    def test_schema_and_shape(self, quick_report):
        assert quick_report["schema"] == CAMPAIGN_SCHEMA
        assert quick_report["config"]["n"] == 5
        assert len(quick_report["trials"]) == QUICK.plans
        summary = quick_report["summary"]
        assert summary["trials"] == QUICK.plans
        assert set(summary["tracks"]) == {"sim", "runtime"}

    def test_outcomes_add_up(self, quick_report):
        for track_summary in quick_report["summary"]["tracks"].values():
            outcomes = track_summary["outcomes"]
            assert outcomes[TERMINATED] + outcomes[NONTERMINATED] == QUICK.plans

    def test_no_safety_violations(self, quick_report):
        assert quick_report["summary"]["safety_violations"] == 0

    def test_render_summary_mentions_verdict(self, quick_report):
        text = render_campaign_summary(quick_report)
        assert "SAFE" in text
        assert f"{QUICK.plans} plans" in text

    def test_write_report_is_stable_json(self, quick_report, tmp_path):
        path = write_campaign_report(quick_report, tmp_path / "r.json")
        text = path.read_text()
        assert json.loads(text) == quick_report
        # Deterministic serialization: same report, same bytes.
        again = write_campaign_report(quick_report, tmp_path / "r2.json")
        assert again.read_text() == text


class TestDeterminism:
    def test_serial_and_parallel_reports_are_byte_identical(self, quick_report):
        parallel = run_campaign(QUICK, workers=2)
        assert json.dumps(parallel, sort_keys=True) == json.dumps(
            quick_report, sort_keys=True
        )

    def test_same_seed_reproduces(self, quick_report):
        again = run_campaign(QUICK, workers=1)
        assert again == quick_report

    def test_different_base_seed_differs(self, quick_report):
        other = run_campaign(
            CampaignConfig(n=5, plans=4, base_seed=501), workers=1
        )
        assert other["trials"] != quick_report["trials"]


class TestScheduledCases:
    """TrialCases carrying a model-checker decision schedule."""

    def _scheduled_case(self, **changes):
        from repro.faults.campaign import TrialCase
        from repro.faults.plan import FaultPlan
        from repro.sim.decisions import CrashDecision, StepDecision

        fields = dict(
            n=3,
            t=1,
            K=2,
            votes=(0, 1, 0),
            plan=FaultPlan(n=3),
            seed=0,
            tracks=("sim",),
            program="broken-commit",
            schedule=(
                StepDecision(pid=0, deliver=()),
                CrashDecision(pid=0),
                StepDecision(pid=1, deliver=()),
            ),
        )
        fields.update(changes)
        return TrialCase(**fields)

    def test_round_trips_through_dict(self):
        from repro.faults.campaign import TrialCase

        case = self._scheduled_case()
        doc = case.to_dict()
        assert "schedule" in doc
        assert TrialCase.from_dict(doc) == case

    def test_unscheduled_dict_omits_the_key(self):
        case = self._scheduled_case(schedule=None)
        assert "schedule" not in case.to_dict()  # v1 artifact back-compat

    def test_scheduled_cases_are_sim_only(self):
        with pytest.raises(ConfigurationError, match="sim-only"):
            self._scheduled_case(tracks=("sim", "runtime"))

    def test_budget_counts_scripted_crashes(self):
        from repro.sim.decisions import CrashDecision

        case = self._scheduled_case()
        assert case.scheduled_crashes == 1
        assert case.within_budget
        over = self._scheduled_case(
            schedule=(CrashDecision(pid=0), CrashDecision(pid=1))
        )
        assert over.scheduled_crashes == 2
        assert not over.within_budget

    def test_scheduled_cases_never_expect_termination(self):
        assert not self._scheduled_case().expect_termination

    def test_execute_runs_script_then_fallback(self):
        from repro.faults.campaign import execute_trial_case

        result = execute_trial_case(self._scheduled_case())
        sim = result["tracks"]["sim"]
        assert 0 in sim["crashed"]
        # The deliver-all fallback completes the run after the script.
        assert sim["outcome"] in (TERMINATED, NONTERMINATED)
