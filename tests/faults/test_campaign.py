"""Campaign runner tests: determinism, schema, safety accounting."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignConfig,
    render_campaign_summary,
    run_campaign,
    run_campaign_trial,
    write_campaign_report,
)
from repro.runtime.cluster import NONTERMINATED, TERMINATED

# Small but real: both tracks, a handful of plans.
QUICK = CampaignConfig(n=5, plans=4, base_seed=31)


@pytest.fixture(scope="module")
def quick_report():
    return run_campaign(QUICK, workers=1)


class TestConfig:
    def test_default_budget_is_optimum(self):
        assert CampaignConfig(n=5).resolved_t == 2
        assert CampaignConfig(n=5, t=1).resolved_t == 1

    def test_rejects_unknown_track(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(tracks=("sim", "tcp"))

    def test_rejects_empty_sweep(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(plans=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(over_budget_fraction=1.5)


class TestTrial:
    def test_trial_is_deterministic(self):
        a = run_campaign_trial(QUICK, 31)
        b = run_campaign_trial(QUICK, 31)
        assert a == b

    def test_trial_record_is_json_safe(self):
        record = run_campaign_trial(QUICK, 33)
        assert json.loads(json.dumps(record)) == record

    def test_trial_runs_requested_tracks_only(self):
        config = CampaignConfig(n=5, plans=1, base_seed=0, tracks=("sim",))
        record = run_campaign_trial(config, 0)
        assert set(record["tracks"]) == {"sim"}


class TestReport:
    def test_schema_and_shape(self, quick_report):
        assert quick_report["schema"] == CAMPAIGN_SCHEMA
        assert quick_report["config"]["n"] == 5
        assert len(quick_report["trials"]) == QUICK.plans
        summary = quick_report["summary"]
        assert summary["trials"] == QUICK.plans
        assert set(summary["tracks"]) == {"sim", "runtime"}

    def test_outcomes_add_up(self, quick_report):
        for track_summary in quick_report["summary"]["tracks"].values():
            outcomes = track_summary["outcomes"]
            assert outcomes[TERMINATED] + outcomes[NONTERMINATED] == QUICK.plans

    def test_no_safety_violations(self, quick_report):
        assert quick_report["summary"]["safety_violations"] == 0

    def test_render_summary_mentions_verdict(self, quick_report):
        text = render_campaign_summary(quick_report)
        assert "SAFE" in text
        assert f"{QUICK.plans} plans" in text

    def test_write_report_is_stable_json(self, quick_report, tmp_path):
        path = write_campaign_report(quick_report, tmp_path / "r.json")
        text = path.read_text()
        assert json.loads(text) == quick_report
        # Deterministic serialization: same report, same bytes.
        again = write_campaign_report(quick_report, tmp_path / "r2.json")
        assert again.read_text() == text


class TestDeterminism:
    def test_serial_and_parallel_reports_are_byte_identical(self, quick_report):
        parallel = run_campaign(QUICK, workers=2)
        assert json.dumps(parallel, sort_keys=True) == json.dumps(
            quick_report, sort_keys=True
        )

    def test_same_seed_reproduces(self, quick_report):
        again = run_campaign(QUICK, workers=1)
        assert again == quick_report

    def test_different_base_seed_differs(self, quick_report):
        other = run_campaign(
            CampaignConfig(n=5, plans=4, base_seed=501), workers=1
        )
        assert other["trials"] != quick_report["trials"]
