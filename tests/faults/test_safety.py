"""Unit tests for the online SafetyMonitor."""

import pytest

from repro.faults.safety import SafetyMonitor


def monitor(votes, t=2):
    return SafetyMonitor(n=len(votes), t=t, votes=votes)


class TestAgreement:
    def test_unanimous_is_ok(self):
        report = monitor([1] * 5).check(
            decisions={p: 1 for p in range(5)},
            crashed=set(),
            terminated=True,
            expect_termination=True,
        )
        assert report.ok
        assert "agreement" in report.checked

    def test_conflicting_decisions_violate(self):
        report = monitor([1] * 5).check(
            decisions={0: 1, 1: 0, 2: 1, 3: None, 4: None},
            crashed=set(),
            terminated=False,
            expect_termination=False,
        )
        assert not report.safety_ok
        assert [v.prop for v in report.violations] == ["agreement"]

    def test_undecided_processors_do_not_conflict(self):
        report = monitor([1] * 3, t=1).check(
            decisions={0: 1, 1: None, 2: None},
            crashed={1},
            terminated=False,
            expect_termination=False,
        )
        assert report.safety_ok


class TestValidity:
    def test_commit_despite_abort_vote_violates(self):
        report = monitor([1, 0, 1, 1, 1]).check(
            decisions={p: 1 for p in range(5)},
            crashed=set(),
            terminated=True,
            expect_termination=True,
        )
        assert not report.safety_ok
        assert any(v.prop == "abort_validity" for v in report.violations)

    def test_abort_with_abort_vote_is_ok(self):
        report = monitor([1, 0, 1, 1, 1]).check(
            decisions={p: 0 for p in range(5)},
            crashed=set(),
            terminated=True,
            expect_termination=True,
        )
        assert report.ok

    def test_benign_all_commit_must_commit(self):
        report = monitor([1] * 5).check(
            decisions={p: 0 for p in range(5)},
            crashed=set(),
            terminated=True,
            expect_termination=True,
            benign=True,
        )
        assert not report.safety_ok
        assert any(v.prop == "commit_validity" for v in report.violations)

    def test_commit_validity_skipped_when_not_benign(self):
        report = monitor([1] * 5).check(
            decisions={p: 0 for p in range(5)},
            crashed={4},
            terminated=True,
            expect_termination=True,
            benign=False,
        )
        assert "commit_validity" not in report.checked
        assert report.ok


class TestNonblocking:
    def test_blocking_within_budget_is_liveness_violation(self):
        report = monitor([1] * 5).check(
            decisions={p: None for p in range(5)},
            crashed={4},
            terminated=False,
            expect_termination=True,
        )
        assert report.safety_ok  # liveness, not safety
        assert not report.liveness_ok
        assert [v.prop for v in report.violations] == ["nonblocking"]

    def test_blocking_over_budget_is_expected(self):
        report = monitor([1] * 5).check(
            decisions={p: None for p in range(5)},
            crashed={2, 3, 4},
            terminated=False,
            expect_termination=False,
        )
        assert report.ok
        assert "nonblocking" not in report.checked


class TestConstruction:
    def test_vote_count_must_match_n(self):
        with pytest.raises(ValueError):
            SafetyMonitor(n=5, t=2, votes=[1, 1])
