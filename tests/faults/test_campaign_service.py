"""Campaign tests for the service track: config gates and trial sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CampaignConfig,
    TrialCase,
    execute_trial_case,
    run_campaign,
)
from repro.faults.plan import CrashFault, FaultPlan


class TestConfigGates:
    def test_recovery_probability_requires_service_track(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(recovery_probability=0.5)
        with pytest.raises(ConfigurationError):
            CampaignConfig(
                recovery_probability=0.5, tracks=("sim", "service")
            )
        config = CampaignConfig(recovery_probability=0.5, tracks=("service",))
        assert config.recovery_probability == 0.5

    def test_recovery_probability_range_checked(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(recovery_probability=1.5, tracks=("service",))

    def test_dict_form_stays_backward_compatible(self):
        # Pre-service reports must stay byte-identical: the new key is
        # emitted only when the feature is in use.
        assert "recovery_probability" not in CampaignConfig().to_dict()
        doc = CampaignConfig(
            recovery_probability=0.5, tracks=("service",)
        ).to_dict()
        assert doc["recovery_probability"] == 0.5

    def test_recovery_plans_rejected_on_fail_stop_tracks(self):
        plan = FaultPlan(
            n=3, crashes=(CrashFault(pid=1, cycle=2, recover_cycle=6),)
        )
        with pytest.raises(ConfigurationError):
            TrialCase(n=3, t=1, K=4, votes=(1, 1, 1), plan=plan, seed=0)
        case = TrialCase(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=plan,
            seed=0,
            tracks=("service",),
        )
        assert case.tracks == ("service",)


class TestServiceTrialExecution:
    def test_kill_recover_trial_reports_recoveries(self):
        plan = FaultPlan(
            n=5,
            crashes=(
                CrashFault(pid=0, cycle=3, recover_cycle=10),
                CrashFault(pid=2, cycle=4, recover_cycle=12),
            ),
        )
        case = TrialCase(
            n=5,
            t=2,
            K=4,
            votes=(1, 1, 1, 1, 1),
            plan=plan,
            seed=17,
            tracks=("service",),
            deadline=8.0,
        )
        result = execute_trial_case(case)
        service = result["tracks"]["service"]
        assert service["outcome"] == "terminated"
        assert set(service["decisions"]) == {1}
        assert service["recoveries"] == 2
        assert service["crashed"] == []


class TestServiceCampaign:
    def test_small_service_sweep_is_safe(self):
        config = CampaignConfig(
            n=5,
            plans=6,
            base_seed=400,
            tracks=("service",),
            recovery_probability=0.75,
            deadline=8.0,
        )
        report = run_campaign(config, workers=1)
        summary = report["summary"]
        assert summary["safety_violations"] == 0
        service = summary["tracks"]["service"]["service"]
        assert service["recoveries"] >= 0
        assert "transfer_decisions" in service


class TestMultiTxnConfigGates:
    def test_multi_txn_requires_service_track(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(txns=4)
        with pytest.raises(ConfigurationError):
            CampaignConfig(shards=2, tracks=("sim", "service"))
        config = CampaignConfig(txns=4, shards=2, tracks=("service",))
        assert config.txns == 4
        assert config.shards == 2

    def test_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(txns=0, tracks=("service",))
        with pytest.raises(ConfigurationError):
            CampaignConfig(shards=0, tracks=("service",))
        with pytest.raises(ConfigurationError):
            CampaignConfig(
                txns=2, commit_bias=1.5, tracks=("service",)
            )

    def test_dict_form_stays_backward_compatible(self):
        assert "txns" not in CampaignConfig().to_dict()
        doc = CampaignConfig(
            txns=4, shards=2, commit_bias=0.9, tracks=("service",)
        ).to_dict()
        assert doc["txns"] == 4
        assert doc["shards"] == 2
        assert doc["commit_bias"] == 0.9


class TestMultiTxnTrialCase:
    def _plan(self, n):
        return FaultPlan(n=n)

    def test_plan_must_span_the_sharded_cluster(self):
        with pytest.raises(ConfigurationError):
            TrialCase(
                n=3,
                t=1,
                K=4,
                votes=(1, 1, 1),
                plan=self._plan(3),  # needs n * shards = 6
                seed=0,
                tracks=("service",),
                txns=4,
                shards=2,
            )

    def test_multi_txn_is_service_only(self):
        with pytest.raises(ConfigurationError):
            TrialCase(
                n=3,
                t=1,
                K=4,
                votes=(1, 1, 1),
                plan=self._plan(3),
                seed=0,
                txns=2,
            )

    def test_dict_roundtrip_preserves_workload(self):
        case = TrialCase(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=self._plan(6),
            seed=5,
            tracks=("service",),
            txns=4,
            shards=2,
            commit_bias=0.8,
        )
        clone = TrialCase.from_dict(case.to_dict())
        assert clone.txns == 4
        assert clone.shards == 2
        assert clone.commit_bias == 0.8
        assert clone.multi_txn
        # Single-txn docs stay free of the new keys.
        single = TrialCase(
            n=3, t=1, K=4, votes=(1, 1, 1), plan=self._plan(3), seed=5
        )
        assert "txns" not in single.to_dict()

    def test_permanent_crash_voids_termination_obligation(self):
        # A permanently-dead coordinator of one group must not be read
        # as a liveness violation for that group's transactions.
        dead_coordinator = FaultPlan(
            n=6, crashes=(CrashFault(pid=3, cycle=2),)
        )
        case = TrialCase(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=dead_coordinator,
            seed=0,
            tracks=("service",),
            txns=4,
            shards=2,
        )
        assert not case.expect_termination


class TestMultiTxnTrialExecution:
    def test_kill_recover_trial_decides_every_txn(self):
        plan = FaultPlan(
            n=6,
            crashes=(
                CrashFault(pid=1, cycle=3, recover_cycle=12),
                CrashFault(pid=4, cycle=5, recover_cycle=14),
            ),
        )
        case = TrialCase(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=plan,
            seed=23,
            tracks=("service",),
            deadline=8.0,
            txns=4,
            shards=2,
        )
        result = execute_trial_case(case)
        service = result["tracks"]["service"]
        assert service["outcome"] == "terminated"
        assert service["txns"]["submitted"] == 4
        assert service["txns"]["decided"] == 4
        assert service["txns"]["undecided"] == {}
        assert service["recoveries"] == 2
        assert service["safety"]["safety_ok"]
        assert service["safety"]["liveness_ok"]
        assert service["safety"]["violations"] == []


class TestMultiTxnCampaign:
    def test_small_multi_txn_sweep_is_safe(self):
        config = CampaignConfig(
            n=3,
            plans=4,
            base_seed=700,
            tracks=("service",),
            recovery_probability=0.75,
            deadline=8.0,
            txns=3,
            shards=2,
        )
        report = run_campaign(config, workers=1)
        assert report["summary"]["safety_violations"] == 0
        assert report["config"]["txns"] == 3
        assert report["config"]["shards"] == 2
