"""Campaign tests for the service track: config gates and trial sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CampaignConfig,
    TrialCase,
    execute_trial_case,
    run_campaign,
)
from repro.faults.plan import CrashFault, FaultPlan


class TestConfigGates:
    def test_recovery_probability_requires_service_track(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(recovery_probability=0.5)
        with pytest.raises(ConfigurationError):
            CampaignConfig(
                recovery_probability=0.5, tracks=("sim", "service")
            )
        config = CampaignConfig(recovery_probability=0.5, tracks=("service",))
        assert config.recovery_probability == 0.5

    def test_recovery_probability_range_checked(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(recovery_probability=1.5, tracks=("service",))

    def test_dict_form_stays_backward_compatible(self):
        # Pre-service reports must stay byte-identical: the new key is
        # emitted only when the feature is in use.
        assert "recovery_probability" not in CampaignConfig().to_dict()
        doc = CampaignConfig(
            recovery_probability=0.5, tracks=("service",)
        ).to_dict()
        assert doc["recovery_probability"] == 0.5

    def test_recovery_plans_rejected_on_fail_stop_tracks(self):
        plan = FaultPlan(
            n=3, crashes=(CrashFault(pid=1, cycle=2, recover_cycle=6),)
        )
        with pytest.raises(ConfigurationError):
            TrialCase(n=3, t=1, K=4, votes=(1, 1, 1), plan=plan, seed=0)
        case = TrialCase(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=plan,
            seed=0,
            tracks=("service",),
        )
        assert case.tracks == ("service",)


class TestServiceTrialExecution:
    def test_kill_recover_trial_reports_recoveries(self):
        plan = FaultPlan(
            n=5,
            crashes=(
                CrashFault(pid=0, cycle=3, recover_cycle=10),
                CrashFault(pid=2, cycle=4, recover_cycle=12),
            ),
        )
        case = TrialCase(
            n=5,
            t=2,
            K=4,
            votes=(1, 1, 1, 1, 1),
            plan=plan,
            seed=17,
            tracks=("service",),
            deadline=8.0,
        )
        result = execute_trial_case(case)
        service = result["tracks"]["service"]
        assert service["outcome"] == "terminated"
        assert set(service["decisions"]) == {1}
        assert service["recoveries"] == 2
        assert service["crashed"] == []


class TestServiceCampaign:
    def test_small_service_sweep_is_safe(self):
        config = CampaignConfig(
            n=5,
            plans=6,
            base_seed=400,
            tracks=("service",),
            recovery_probability=0.75,
            deadline=8.0,
        )
        report = run_campaign(config, workers=1)
        summary = report["summary"]
        assert summary["safety_violations"] == 0
        service = summary["tracks"]["service"]["service"]
        assert service["recoveries"] >= 0
        assert "transfer_decisions" in service
