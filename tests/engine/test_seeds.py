"""Tests for the unified seed-derivation scheme."""

import pytest

from repro.engine import seeds


class TestTrialSeed:
    def test_contiguous_from_base(self):
        assert [seeds.trial_seed(100, i) for i in range(4)] == [
            100,
            101,
            102,
            103,
        ]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            seeds.trial_seed(0, -1)


class TestStreams:
    def test_derive_is_offset(self):
        assert seeds.derive(7, seeds.COIN_STREAM) == 7 + 104_729

    def test_coin_seed_matches_historical_constant(self):
        # The offsets are frozen so tables generated before the seed
        # unification replay byte-identically after it.
        assert seeds.coin_seed(3) == 3 + 104729

    def test_all_stream_offsets_frozen(self):
        assert seeds.COIN_STREAM == 104_729
        assert seeds.ABLATION_COIN_STREAM == 31_337
        assert seeds.BENOR_COIN_STREAM == 7_654_321
        assert seeds.DEALER_COIN_STREAM == 424_242
        assert seeds.COORDINATOR_COIN_STREAM == 515_151
        assert seeds.FIXTURE_COIN_STREAM == 1_000

    def test_streams_distinct(self):
        offsets = {
            seeds.COIN_STREAM,
            seeds.ABLATION_COIN_STREAM,
            seeds.BENOR_COIN_STREAM,
            seeds.DEALER_COIN_STREAM,
            seeds.COORDINATOR_COIN_STREAM,
            seeds.FIXTURE_COIN_STREAM,
        }
        assert len(offsets) == 6
