"""Tests for the batch trial-execution engine."""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.adversary.standard import OnTimeAdversary
from repro.engine.executor import (
    TrialEngine,
    default_workers,
    resolve_workers,
    run_trials,
    set_default_workers,
    workers_from_env,
)
from repro.engine.spec import SeededFactory, chunk_seeds
from repro.errors import ConfigurationError
from repro.telemetry.registry import MetricsRegistry, count, use_registry


def _square(seed: int, offset: int = 0) -> int:
    return seed * seed + offset


def _marked(seed: int) -> int:
    count("engine_test_marks_total", help="trial marker")
    return seed + 1


class TestChunkSeeds:
    def test_concatenation_reproduces_seeds(self):
        seeds = tuple(range(17))
        chunks = chunk_seeds(seeds, 5)
        assert tuple(s for chunk in chunks for s in chunk) == seeds

    def test_chunks_are_contiguous_and_balanced(self):
        chunks = chunk_seeds(tuple(range(17)), 5)
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        for chunk in chunks:
            assert chunk == tuple(range(chunk[0], chunk[0] + len(chunk)))

    def test_more_chunks_than_seeds(self):
        assert chunk_seeds((3, 4), 8) == [(3,), (4,)]

    def test_empty_seed_list(self):
        assert chunk_seeds((), 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_seeds((1, 2), 0)


class TestTrialEngine:
    def test_parallel_matches_serial(self):
        trial = partial(_square, offset=7)
        serial = TrialEngine(workers=1).map(trial, range(23))
        parallel = TrialEngine(workers=4).map(trial, range(23))
        assert serial == parallel == [s * s + 7 for s in range(23)]

    def test_empty_batch(self):
        assert TrialEngine(workers=4).map(_square, ()) == []

    def test_single_seed_stays_in_process(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            results = TrialEngine(workers=4).map(_square, [6])
        assert results == [36]
        assert registry.counter("engine_trials_total").value(mode="parallel") == 0

    def test_unpicklable_trial_falls_back_to_serial(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            results = TrialEngine(workers=4).map(lambda s: s * 2, range(8))
        assert results == [s * 2 for s in range(8)]
        fallbacks = registry.counter("engine_fallbacks_total")
        assert fallbacks.value(reason="unpicklable") == 1
        assert registry.counter("engine_trials_total").value(mode="parallel") == 0

    def test_worker_telemetry_merges_into_parent(self):
        registry = MetricsRegistry(enabled=True)
        with use_registry(registry):
            results = TrialEngine(workers=2).map(_marked, range(10))
        assert results == [s + 1 for s in range(10)]
        assert registry.counter("engine_test_marks_total").value() == 10
        assert registry.counter("engine_trials_total").value(mode="parallel") == 10
        assert registry.counter("engine_chunks_total").value() > 0


class TestRunTrials:
    def test_consecutive_seeds_from_base(self):
        assert run_trials(_square, trials=4, base_seed=10) == [100, 121, 144, 169]

    def test_explicit_seeds_preserve_order(self):
        assert run_trials(_square, seeds=[5, 3, 9]) == [25, 9, 81]

    def test_requires_exactly_one_seed_source(self):
        with pytest.raises(ConfigurationError):
            run_trials(_square)
        with pytest.raises(ConfigurationError):
            run_trials(_square, trials=2, seeds=[1])

    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError):
            run_trials(_square, trials=0)


class TestWorkerResolution:
    def test_none_resolves_serial_by_default(self):
        assert resolve_workers(None) == 1

    def test_default_override_round_trip(self):
        set_default_workers(3)
        try:
            assert resolve_workers(None) == 3
        finally:
            set_default_workers(None)
        assert resolve_workers(None) == 1

    def test_explicit_count_wins(self):
        set_default_workers(3)
        try:
            assert resolve_workers(2) == 2
        finally:
            set_default_workers(None)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)
        with pytest.raises(ConfigurationError):
            set_default_workers(0)

    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6
        monkeypatch.setenv("REPRO_WORKERS", "zebra")
        with pytest.raises(ConfigurationError):
            default_workers()


class TestWorkersFromEnv:
    """Strict parsing of worker-count environment variables.

    Zero and negative counts are configuration typos, not requests for
    serial execution; they must be rejected loudly instead of clamped.
    """

    def test_unset_and_blank_fall_back_to_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env("REPRO_WORKERS", 4) == 4
        for blank in ("", "   ", "\t"):
            monkeypatch.setenv("REPRO_WORKERS", blank)
            assert workers_from_env("REPRO_WORKERS", 4) == 4

    def test_whitespace_padded_integer_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", " 3 ")
        assert workers_from_env("REPRO_WORKERS", 1) == 3

    @pytest.mark.parametrize("raw", ["0", "-1", "-8"])
    def test_zero_and_negative_rejected(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ConfigurationError, match="REPRO_WORKERS"):
            workers_from_env("REPRO_WORKERS", 1)

    @pytest.mark.parametrize("raw", ["zebra", "2.5", "1e3", "two"])
    def test_non_integer_rejected_naming_the_variable(
        self, raw, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(
            ConfigurationError, match="REPRO_WORKERS.*integer"
        ):
            workers_from_env("REPRO_WORKERS", 1)

    def test_bench_workers_use_the_same_parser(self, monkeypatch):
        # benchmarks/conftest.py resolves REPRO_BENCH_WORKERS through
        # this exact helper, so the strictness applies to both paths.
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        with pytest.raises(
            ConfigurationError, match="REPRO_BENCH_WORKERS"
        ):
            workers_from_env("REPRO_BENCH_WORKERS", 1)
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "2")
        assert workers_from_env("REPRO_BENCH_WORKERS", 1) == 2
        monkeypatch.delenv("REPRO_BENCH_WORKERS")
        assert workers_from_env("REPRO_BENCH_WORKERS", 1) == 1


class TestSeededFactory:
    def test_builds_target_with_seed(self):
        factory = SeededFactory.of(OnTimeAdversary, K=4)
        adversary = factory(17)
        assert isinstance(adversary, OnTimeAdversary)

    def test_pickle_round_trip(self):
        factory = SeededFactory.of(OnTimeAdversary, K=4)
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert isinstance(clone(3), OnTimeAdversary)
