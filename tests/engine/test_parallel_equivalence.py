"""Serial vs parallel experiment equivalence.

The engine's headline guarantee: for any worker count an experiment
produces the same ``ResultTable`` — byte for byte — and the same merged
count-metric snapshot as the serial run.  Exercised across experiments
covering five distinct adversaries: E1 (random walk, vote splitter),
E2 (synchronous, on-time, random walk), and E3 (synchronous).
"""

from __future__ import annotations

import pytest

from repro.experiments.registry import run_experiment
from repro.telemetry.registry import MetricsRegistry, use_registry

EXPERIMENTS = ("E1", "E2", "E3")


def _run(experiment_id: str, workers: int):
    """Run one quick experiment under a fresh enabled registry."""
    registry = MetricsRegistry(enabled=True)
    with use_registry(registry):
        table = run_experiment(experiment_id, quick=True, workers=workers)
    return table, registry.snapshot()


def _counters(snapshot):
    """Counter samples only, minus the engine's own bookkeeping.

    Timing histograms legitimately differ between runs; the engine's
    ``engine_*`` counters exist only on the parallel path.  Everything
    else — every count the trials themselves record — must match.
    """
    out = {}
    for name, data in snapshot.items():
        if data["type"] != "counter" or name.startswith("engine_"):
            continue
        out[name] = sorted(
            (tuple(sorted(sample["labels"].items())), sample["value"])
            for sample in data["samples"]
        )
    return out


@pytest.mark.parametrize("experiment_id", EXPERIMENTS)
def test_parallel_run_matches_serial(experiment_id):
    serial_table, serial_snapshot = _run(experiment_id, workers=1)
    parallel_table, parallel_snapshot = _run(experiment_id, workers=4)

    # Tables are byte-identical, so --json / --trace-out artifacts and
    # EXPERIMENTS.md numbers do not depend on the worker count.
    assert parallel_table.render() == serial_table.render()
    assert parallel_table.to_dict() == serial_table.to_dict()

    # Worker registries merged back into the parent reproduce the serial
    # counter totals exactly.
    assert _counters(parallel_snapshot) == _counters(serial_snapshot)

    # The parallel run really fanned out (no silent pickling fallback).
    trials = parallel_snapshot["engine_trials_total"]["samples"]
    assert sum(s["value"] for s in trials if s["labels"] == {"mode": "parallel"}) > 0
    assert "engine_fallbacks_total" not in parallel_snapshot
