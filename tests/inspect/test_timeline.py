"""Tests for the run inspection helpers."""

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.inspect import (
    render_lanes,
    render_round_chart,
    render_timeline,
    summarize_run,
)
from tests.conftest import make_commit_simulation


def recorded_run(**kwargs):
    sim, _ = make_commit_simulation([1] * 3, t=1, **kwargs)
    return sim.run().run


class TestRenderTimeline:
    def test_contains_header_and_events(self):
        run = recorded_run()
        text = render_timeline(run)
        assert "n=3 t=1 K=4" in text
        assert "p0" in text and "p1" in text and "p2" in text

    def test_marks_decisions(self):
        text = render_timeline(recorded_run())
        assert "DECIDES 1" in text

    def test_limit_truncates(self):
        run = recorded_run()
        text = render_timeline(run, limit=3)
        assert "more events" in text
        assert text.count("\n") < run.event_count

    def test_marks_crashes(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=2, cycle=2)]
        )
        run = recorded_run(adversary=adversary)
        assert "CRASH" in render_timeline(run)

    def test_payload_kinds_visible(self):
        text = render_timeline(recorded_run())
        assert "GoMessage" in text
        assert "VoteMessage" in text


class TestRenderLanes:
    def test_one_column_per_processor(self):
        run = recorded_run()
        lines = render_lanes(run).splitlines()
        assert lines[0].split() == ["event", "p0", "p1", "p2"]
        assert len(lines) == run.event_count + 1

    def test_decision_symbol_appears(self):
        assert "D" in render_lanes(recorded_run())

    def test_crash_symbol(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=1, cycle=2)]
        )
        assert "X" in render_lanes(recorded_run(adversary=adversary))


class TestRenderRoundChart:
    def test_boundaries_and_decisions(self):
        text = render_round_chart(recorded_run())
        assert "p0: ends at clocks" in text
        assert "decided in round" in text
        assert "last nonfaulty decision" in text


class TestSummarizeRun:
    def test_happy_path(self):
        text = summarize_run(recorded_run())
        assert "all deciders chose 1" in text
        assert "crashed=none" in text
        assert "3/3 programs returned" in text

    def test_crash_reported(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=2, cycle=2)]
        )
        text = summarize_run(recorded_run(adversary=adversary))
        assert "crashed=[2]" in text

    def test_undecided_run(self):
        run = recorded_run(max_steps=5)
        assert "no processor decided" in summarize_run(run)
