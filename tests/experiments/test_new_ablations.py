"""Quick-mode checks for the ablation experiments E12 and E13."""

from repro.experiments.registry import run_experiment


class TestE12:
    def test_local_explodes_shared_flat(self):
        table = run_experiment("E12", quick=True)
        mechanism_column = table.columns.index("mechanism")
        stages_column = table.columns.index("mean stages")
        local = [
            row[stages_column]
            for row in table.rows
            if row[mechanism_column] == "local (Ben-Or)"
        ]
        shared = [
            row[stages_column]
            for row in table.rows
            if row[mechanism_column] != "local (Ben-Or)"
        ]
        assert min(local) > 2 * max(shared)

    def test_dealer_matches_coordinator(self):
        table = run_experiment("E12", quick=True)
        mechanism_column = table.columns.index("mechanism")
        environment_column = table.columns.index("environment")
        stages_column = table.columns.index("mean stages")
        rows = {
            (row[mechanism_column], row[environment_column]): row[stages_column]
            for row in table.rows
        }
        for environment in ("balancer", "balancer + low-id crash"):
            assert (
                rows[("dealer (Rabin)", environment)]
                == rows[("coordinator list (this paper)", environment)]
            )

    def test_fault_envelope_column(self):
        table = run_experiment("E12", quick=True)
        mechanism_column = table.columns.index("mechanism")
        envelope_column = 1  # "max t @ n=6"
        for row in table.rows:
            if row[mechanism_column] == "weak-shared (CMS-style)":
                assert row[envelope_column] == 0  # (6-1)//6
            else:
                assert row[envelope_column] == 2  # (6-1)//2


class TestE13:
    def test_early_abort_strictly_earlier(self):
        table = run_experiment("E13", quick=True)
        scenario_column = table.columns.index("scenario")
        early_column = table.columns.index("early abort")
        first_column = table.columns.index("mean first-abort ticks")
        by_key = {
            (row[scenario_column], row[early_column]): row[first_column]
            for row in table.rows
        }
        scenarios = {row[scenario_column] for row in table.rows}
        for scenario in scenarios:
            assert by_key[(scenario, "yes")] < by_key[(scenario, "no")]

    def test_always_consistent(self):
        table = run_experiment("E13", quick=True)
        consistent_column = table.columns.index("consistent")
        assert all(row[consistent_column] == "100%" for row in table.rows)
