"""Tests for the experiment registry and quick experiment runs."""

import pytest

from repro.analysis.tables import ResultTable
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 15)}

    def test_metadata_complete(self):
        for info in EXPERIMENTS.values():
            assert info.title
            assert info.claim
            assert info.expectation
            assert callable(info.runner)

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")


class TestQuickRuns:
    """Every experiment must run in quick mode and honour its claim."""

    def test_e1_stages_below_four(self):
        table = run_experiment("E1", quick=True)
        assert isinstance(table, ResultTable)
        mean_column = table.columns.index("mean stages")
        for row in table.rows:
            assert row[mean_column] < 4

    def test_e2_rounds_below_fourteen(self):
        table = run_experiment("E2", quick=True)
        mean_column = table.columns.index("mean rounds")
        for row in table.rows:
            assert row[mean_column] <= 14

    def test_e3_bound_holds(self):
        table = run_experiment("E3", quick=True)
        held_column = table.columns.index("bound held")
        assert all(row[held_column] == "yes" for row in table.rows)

    def test_e4_termination_complete(self):
        table = run_experiment("E4", quick=True)
        termination_column = table.columns.index("terminated")
        assert all(row[termination_column] == "100%" for row in table.rows)

    def test_e5_zero_coins_explode(self):
        table = run_experiment("E5", quick=True)
        coins_column = table.columns.index("|coins|")
        stages_column = table.columns.index("mean stages")
        by_coins = {row[coins_column]: row[stages_column] for row in table.rows}
        assert by_coins[0] > 2 * by_coins[1]

    def test_e6_never_conflicts(self):
        table = run_experiment("E6", quick=True)
        conflict_column = table.columns.index("conflict rate")
        assert all(row[conflict_column] == "0%" for row in table.rows)

    def test_e7_sharp_threshold(self):
        table = run_experiment("E7", quick=True)
        relation_column = table.columns.index("relation")
        terminated_column = table.columns.index("terminated")
        for row in table.rows:
            trials = row[table.columns.index("trials")]
            if row[relation_column] == "n = 2t":
                assert row[terminated_column] == f"0/{trials}"
            else:
                assert row[terminated_column] == f"{trials}/{trials}"

    def test_e8_ticks_grow_rounds_flat(self):
        table = run_experiment("E8", quick=True)
        ticks_column = table.columns.index("mean ticks")
        rounds_column = table.columns.index("max rounds")
        ticks = [row[ticks_column] for row in table.rows]
        assert ticks == sorted(ticks) and ticks[-1] > 2 * ticks[0]
        assert all(row[rounds_column] <= 14 for row in table.rows)

    def test_e9_protocol2_never_wrong(self):
        table = run_experiment("E9", quick=True)
        protocol_column = table.columns.index("protocol")
        wrong_column = table.columns.index("wrong answers")
        for row in table.rows:
            if row[protocol_column] == "Protocol 2":
                assert row[wrong_column] == 0

    def test_e10_benor_slower_than_p1_under_balancer(self):
        table = run_experiment("E10", quick=True)
        rows = {
            (row[1], row[2]): row[table.columns.index("mean stages")]
            for row in table.rows
            if row[0] == 6  # n = 6
        }
        balancer = "balancer (content-aware)"
        assert rows[(balancer, "Ben-Or")] > rows[(balancer, "Protocol 1")]

    def test_e11_threshold_at_t(self):
        table = run_experiment("E11", quick=True)
        crash_column = table.columns.index("crashes")
        termination_column = table.columns.index("termination rate")
        t_column = table.columns.index("t")
        for row in table.rows:
            if row[crash_column] <= row[t_column]:
                assert row[termination_column] == "100%"
            else:
                assert row[termination_column] == "0%"
