"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_adversary, main


class TestRunCommit:
    def test_happy_path(self, capsys):
        code = main(["run-commit", "--votes", "1,1,1", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision: COMMIT" in out
        assert "asynchronous rounds" in out

    def test_abort_vote(self, capsys):
        code = main(["run-commit", "--votes", "1,0,1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision: ABORT" in out

    def test_timeline_and_lanes_and_rounds(self, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1",
                "--timeline",
                "--lanes",
                "--rounds",
                "--limit",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recv[" in out  # timeline
        assert "event  p0 p1 p2" in out  # lanes
        assert "asynchronous rounds (clock" in out  # round chart

    def test_crash_adversary(self, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1,1,1",
                "--adversary",
                "crash",
                "--crashes",
                "3,4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crashed=[3, 4]" in out

    def test_invalid_votes_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-commit", "--votes", "1,2,banana"])


class TestSaveAndReplay:
    def test_round_trip(self, tmp_path, capsys):
        path = tmp_path / "schedule.json"
        assert main(["run-commit", "--votes", "1,1,1", "--save", str(path)]) == 0
        capsys.readouterr()
        assert path.exists()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "p0: COMMIT" in out

    def test_replay_vote_count_checked(self, tmp_path, capsys):
        path = tmp_path / "schedule.json"
        main(["run-commit", "--votes", "1,1,1", "--save", str(path)])
        capsys.readouterr()
        code = main(["replay", str(path), "--votes", "1,1,1,1,1"])
        assert code == 2
        assert "recorded with n=3" in capsys.readouterr().err


class TestExperiments:
    def test_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("E1", "E7", "E13"):
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_experiment_runs(self, capsys):
        assert main(["experiment", "E3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "bound held" in out


class TestJsonOutput:
    def test_run_commit_json_round_trips(self, capsys):
        """The ISSUE acceptance criterion, end to end."""
        from dataclasses import asdict

        from repro.analysis.metrics import metrics_from_run
        from repro.telemetry.runio import run_from_records

        code = main(["run-commit", "--adversary", "ontime", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.run-commit"
        assert document["version"] == 1
        counters = document["counters"]
        assert counters["messages"]["sent_by_kind"]["GoMessage"] > 0
        assert counters["messages"]["late"] == 0
        assert counters["rounds"]["max_decision_round"] is not None
        assert counters["agreement"]["stages"] >= 1
        assert "sim_events_total" in document["telemetry"]
        run = run_from_records(document["trace"]["records"])
        recovered = asdict(metrics_from_run(run, record=False))
        assert recovered == document["metrics"]

    def test_run_commit_trace_out(self, tmp_path, capsys):
        from repro.telemetry.runio import import_run_jsonl

        path = tmp_path / "run.jsonl"
        code = main(
            ["run-commit", "--votes", "1,1,1", "--trace-out", str(path)]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        run = import_run_jsonl(path)
        assert run.n == 3

    def test_json_suppresses_text_output(self, capsys):
        main(["run-commit", "--votes", "1,1,1", "--json"])
        out = capsys.readouterr().out
        assert "decision:" not in out
        json.loads(out)  # the whole stdout is one JSON document

    def test_experiment_json(self, capsys):
        code = main(["experiment", "E3", "--quick", "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.experiment"
        assert document["id"] == "E3"
        assert document["seconds"] > 0
        assert document["table"]["rows"]
        assert "experiment_runs_total" in document["telemetry"]


class TestStats:
    def test_stats_from_trace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run-commit", "--votes", "1,1,1", "--trace-out", str(path)])
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["runs_recorded_total"]["samples"][0]["value"] == 1
        assert "run_messages_sent_total" in snapshot

    def test_stats_prometheus_format(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main(["run-commit", "--votes", "1,1,1", "--trace-out", str(path)])
        capsys.readouterr()
        assert main(["stats", str(path), "--format", "prom"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE runs_recorded_total counter" in text
        assert 'run_messages_sent_total{kind="GoMessage"}' in text

    def test_stats_unreadable_trace(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "missing.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stats_empty_registry(self, capsys):
        assert main(["stats"]) == 0
        assert json.loads(capsys.readouterr().out) == {}


class TestLogLevel:
    def test_flag_accepted(self, capsys):
        import logging

        from repro.telemetry.log import LOGGER_NAME

        logger = logging.getLogger(LOGGER_NAME)
        level = logger.level
        try:
            code = main(
                ["--log-level", "error", "run-commit", "--votes", "1,1,1"]
            )
            assert code == 0
            assert logger.level == logging.ERROR
        finally:
            for handler in list(logger.handlers):
                if getattr(handler, "_repro_telemetry_handler", False):
                    logger.removeHandler(handler)
            logger.setLevel(level)

    def test_unknown_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["--log-level", "loud", "run-commit"])


class TestBuildAdversary:
    @pytest.mark.parametrize(
        "name", ["synchronous", "ontime", "late", "random", "crash"]
    )
    def test_all_choices_constructible(self, name):
        adversary = build_adversary(name, K=4, seed=0, crashes=[1])
        assert adversary is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_adversary("nope", K=4, seed=0, crashes=[])


class TestFaultsCampaign:
    def test_quick_campaign_summary(self, capsys, tmp_path):
        out = tmp_path / "campaign.json"
        code = main(
            [
                "faults",
                "campaign",
                "--plans",
                "3",
                "--seed",
                "17",
                "--workers",
                "1",
                "--tracks",
                "sim",
                "--out",
                str(out),
            ]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "3 plans" in captured
        assert "verdict: SAFE" in captured
        import json

        report = json.loads(out.read_text())
        assert report["schema"] == "repro.fault-campaign v1"
        assert len(report["trials"]) == 3

    def test_json_output_is_machine_readable(self, capsys):
        code = main(
            [
                "faults",
                "campaign",
                "--plans",
                "2",
                "--seed",
                "5",
                "--workers",
                "1",
                "--tracks",
                "sim",
                "--json",
            ]
        )
        import json

        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["safety_violations"] == 0

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["faults"])


class TestFaultsExitCodes:
    """Campaign exit codes: 0 clean, 1 safety, 2 liveness-only (opt-in)."""

    @staticmethod
    def _fabricate(monkeypatch, safety, liveness):
        def fake_run_campaign(config, workers=None):
            return {
                "schema": "repro.fault-campaign v1",
                "config": config.to_dict(),
                "summary": {
                    "safety_violations": safety,
                    "liveness_violations": liveness,
                },
                "trials": [],
            }

        import repro.faults.campaign as campaign

        monkeypatch.setattr(campaign, "run_campaign", fake_run_campaign)

    ARGS = ["faults", "campaign", "--plans", "1", "--json"]

    def test_liveness_only_passes_by_default(self, monkeypatch, capsys):
        self._fabricate(monkeypatch, safety=0, liveness=3)
        assert main(self.ARGS) == 0
        capsys.readouterr()

    def test_fail_on_liveness_returns_two(self, monkeypatch, capsys):
        self._fabricate(monkeypatch, safety=0, liveness=3)
        assert main(self.ARGS + ["--fail-on-liveness"]) == 2
        capsys.readouterr()

    def test_safety_outranks_liveness(self, monkeypatch, capsys):
        self._fabricate(monkeypatch, safety=1, liveness=3)
        assert main(self.ARGS + ["--fail-on-liveness"]) == 1
        capsys.readouterr()

    def test_clean_campaign_returns_zero(self, monkeypatch, capsys):
        self._fabricate(monkeypatch, safety=0, liveness=0)
        assert main(self.ARGS + ["--fail-on-liveness"]) == 0
        capsys.readouterr()


@pytest.fixture(scope="module")
def broken_artifact_dir(tmp_path_factory):
    """One broken-variant campaign, artifacts cut once for the module."""
    target = tmp_path_factory.mktemp("artifacts")
    code = main(
        [
            "faults",
            "campaign",
            "--variant",
            "broken-commit",
            "--plans",
            "6",
            "--seed",
            "0",
            "--tracks",
            "sim",
            "--workers",
            "1",
            "--artifact-dir",
            str(target),
        ]
    )
    assert code == 1  # the planted bug must trip the safety oracle
    return target


class TestFaultsCounterexamplePipeline:
    def test_campaign_cuts_replay_artifacts(self, broken_artifact_dir):
        artifacts = sorted(broken_artifact_dir.glob("counterexample-*.jsonl"))
        assert artifacts

    def test_replay_verb_confirms_byte_identical(
        self, broken_artifact_dir, capsys
    ):
        artifact = sorted(broken_artifact_dir.iterdir())[0]
        code = main(["faults", "replay", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out

    def test_replay_verb_json(self, broken_artifact_dir, capsys):
        artifact = sorted(broken_artifact_dir.iterdir())[0]
        code = main(["faults", "replay", str(artifact), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["match"] is True
        assert report["properties"]

    def test_replay_verb_flags_tampering(
        self, broken_artifact_dir, tmp_path, capsys
    ):
        artifact = sorted(broken_artifact_dir.iterdir())[0]
        lines = artifact.read_text().splitlines()
        tampered = []
        for line in lines:
            record = json.loads(line)
            if record["record"] == "expected":
                record["result"]["decisions"] = [
                    None for _ in record["result"]["decisions"]
                ]
            tampered.append(json.dumps(record))
        bad = tmp_path / "tampered.jsonl"
        bad.write_text("\n".join(tampered) + "\n")
        code = main(["faults", "replay", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIVERGED" in out

    def test_shrink_verb_minimizes_artifact(
        self, broken_artifact_dir, tmp_path, capsys
    ):
        artifact = sorted(broken_artifact_dir.iterdir())[0]
        minimal = tmp_path / "minimal.jsonl"
        code = main(
            [
                "faults",
                "shrink",
                "--artifact",
                str(artifact),
                "--workers",
                "1",
                "--max-entries",
                "2",
                "--out",
                str(minimal),
            ]
        )
        capsys.readouterr()
        assert code == 0
        # The minimal artifact is itself replayable.
        assert main(["faults", "replay", str(minimal)]) == 0
        capsys.readouterr()

    def test_shrink_verb_enforces_max_entries(
        self, broken_artifact_dir, capsys
    ):
        artifact = sorted(broken_artifact_dir.iterdir())[0]
        code = main(
            [
                "faults",
                "shrink",
                "--artifact",
                str(artifact),
                "--workers",
                "1",
                "--max-entries",
                "0",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "--max-entries" in err

    def test_shrink_scan_without_violation_returns_three(self, capsys):
        code = main(
            [
                "faults",
                "shrink",
                "--variant",
                "commit",
                "--plans",
                "2",
                "--workers",
                "1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 3
        assert "nothing to shrink" in err

    def test_diff_verb_is_consistent_on_correct_protocol(self, capsys):
        code = main(
            ["faults", "diff", "--plans", "2", "--workers", "1", "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["schema"] == "repro.fault-differential v1"
        assert report["summary"]["findings"] == 0


class TestSimCoreSelection:
    @pytest.fixture(autouse=True)
    def _isolate_core_selection(self, monkeypatch):
        # --sim-core installs a process-wide override and exports
        # REPRO_SIM_CORE (for engine workers); neither may leak.
        from repro.sim.coreselect import set_default_sim_core

        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        set_default_sim_core(None)
        yield
        monkeypatch.delenv("REPRO_SIM_CORE", raising=False)
        set_default_sim_core(None)

    def test_sim_core_flag_runs_fast_core(self, capsys):
        code = main(
            ["run-commit", "--votes", "1,1,1", "--sim-core", "fast"]
        )
        assert code == 0
        assert "decision: COMMIT" in capsys.readouterr().out

    def test_bad_env_core_is_a_usage_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SIM_CORE", "turbo")
        code = main(["run-commit", "--votes", "1,1,1"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "REPRO_SIM_CORE" in err

    def test_unknown_flag_value_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run-commit", "--sim-core", "turbo"])
        assert excinfo.value.code == 2

    def test_cores_diff_oracle_clean(self, capsys):
        code = main(
            ["faults", "diff", "--cores", "--plans", "3", "--seed", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BYTE-IDENTICAL" in out


class TestExitCodeTable:
    def test_help_documents_every_exit_code(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes (all commands):" in out
        assert "0  success" in out
        assert "1  findings" in out
        assert "2  usage or input error" in out
        assert "3  nothing to shrink" in out
        # The findings row names every exit-1 producer, old and new
        # (normalised: the table wraps producers across lines).
        out = " ".join(out.split())
        for producer in (
            "faults campaign",
            "mc explore",
            "faults replay",
            "faults diff",
            "faults shrink",
            "run-commit",
            "mc certify",
        ):
            assert producer in out


class TestMcExploreVerb:
    def test_safe_exploration_exits_zero(self, capsys):
        code = main(
            ["mc", "explore", "--votes", "1,1,1", "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        document = json.loads(out)
        assert document["schema"] == "repro.mc-explore v1"
        assert document["exhaustive"] is True
        assert document["violations"] == []

    def test_planted_bug_exits_one_and_cuts_artifacts(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "mc",
                "explore",
                "--variant",
                "broken-commit",
                "--votes",
                "0,1,0",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATIONS FOUND" in out
        artifacts = sorted(tmp_path.glob("mc-counterexample-*.jsonl"))
        assert artifacts

    def test_cut_artifact_replays_byte_identically(self, tmp_path, capsys):
        main(
            [
                "mc",
                "explore",
                "--variant",
                "broken-commit",
                "--votes",
                "0,1,0",
                "--first",
                "--artifact-dir",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        artifact = sorted(tmp_path.glob("mc-counterexample-*.jsonl"))[0]
        code = main(["faults", "replay", str(artifact)])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out

    def test_bad_bounds_exit_two(self, capsys):
        code = main(["mc", "explore", "--n", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "n >= 2" in err

    def test_report_written_to_out(self, tmp_path, capsys):
        target = tmp_path / "explore.json"
        code = main(
            ["mc", "explore", "--votes", "1,1,1", "--out", str(target)]
        )
        capsys.readouterr()
        assert code == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro.mc-explore v1"


class TestMcCertifyVerb:
    def test_unknown_preset_exits_two(self, capsys):
        code = main(["mc", "certify", "--preset", "no-such"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown certify preset" in err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["mc"])
