"""Tests for the command-line interface."""

import pytest

from repro.cli import build_adversary, main


class TestRunCommit:
    def test_happy_path(self, capsys):
        code = main(["run-commit", "--votes", "1,1,1", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision: COMMIT" in out
        assert "asynchronous rounds" in out

    def test_abort_vote(self, capsys):
        code = main(["run-commit", "--votes", "1,0,1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decision: ABORT" in out

    def test_timeline_and_lanes_and_rounds(self, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1",
                "--timeline",
                "--lanes",
                "--rounds",
                "--limit",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recv[" in out  # timeline
        assert "event  p0 p1 p2" in out  # lanes
        assert "asynchronous rounds (clock" in out  # round chart

    def test_crash_adversary(self, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1,1,1",
                "--adversary",
                "crash",
                "--crashes",
                "3,4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crashed=[3, 4]" in out

    def test_invalid_votes_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-commit", "--votes", "1,2,banana"])


class TestSaveAndReplay:
    def test_round_trip(self, tmp_path, capsys):
        path = tmp_path / "schedule.json"
        assert main(["run-commit", "--votes", "1,1,1", "--save", str(path)]) == 0
        capsys.readouterr()
        assert path.exists()
        assert main(["replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "p0: COMMIT" in out

    def test_replay_vote_count_checked(self, tmp_path, capsys):
        path = tmp_path / "schedule.json"
        main(["run-commit", "--votes", "1,1,1", "--save", str(path)])
        capsys.readouterr()
        code = main(["replay", str(path), "--votes", "1,1,1,1,1"])
        assert code == 2
        assert "recorded with n=3" in capsys.readouterr().err


class TestExperiments:
    def test_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("E1", "E7", "E13"):
            assert experiment_id in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_quick_experiment_runs(self, capsys):
        assert main(["experiment", "E3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "bound held" in out


class TestBuildAdversary:
    @pytest.mark.parametrize(
        "name", ["synchronous", "ontime", "late", "random", "crash"]
    )
    def test_all_choices_constructible(self, name):
        adversary = build_adversary(name, K=4, seed=0, crashes=[1])
        assert adversary is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_adversary("nope", K=4, seed=0, crashes=[])
