"""Tests for the 3PC baseline: nonblocking under synchrony, inconsistent
under bad timing."""

import pytest

from repro.adversary.crash import AdaptiveCrashAdversary
from repro.adversary.standard import LateMessageAdversary, SynchronousAdversary
from repro.errors import ConfigurationError
from repro.protocols.threepc import ThreePCProgram
from repro.sim.scheduler import Simulation
from repro.types import Decision


def run_threepc(votes, adversary=None, seed=0, max_steps=20_000, K=4):
    n = len(votes)
    programs = [
        ThreePCProgram(pid=p, n=n, initial_vote=v, K=K)
        for p, v in enumerate(votes)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    sim = Simulation(
        programs,
        adversary,
        K=K,
        t=(n - 1) // 2,
        seed=seed,
        max_steps=max_steps,
    )
    return sim.run(), programs


class TestHappyPath:
    def test_all_yes_commits(self):
        result, programs = run_threepc([1] * 5)
        assert set(result.decisions().values()) == {int(Decision.COMMIT)}
        assert all(p.stats.reached_precommit for p in programs)

    def test_single_no_aborts(self):
        result, programs = run_threepc([1, 0, 1, 1, 1])
        assert set(result.decisions().values()) == {0}
        assert not any(p.stats.reached_precommit for p in programs)

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            ThreePCProgram(pid=0, n=3, initial_vote=1, K=0)


class TestNonblockingUnderCrashes:
    def test_coordinator_crash_mid_fanout_does_not_block(self):
        # This is 3PC's raison d'etre: the timeout transitions terminate
        # the survivors even when the coordinator dies silently.
        adversary = AdaptiveCrashAdversary(
            victims=[0],
            kill_after_sends=2,
            suppress_to={1, 2, 3, 4},
        )
        result, _ = run_threepc([1] * 5, adversary=adversary)
        assert result.terminated


class TestLateMessages:
    def test_lateness_can_produce_conflicting_decisions(self):
        # A participant still in the wait state aborts on timeout while a
        # precommitted one commits on timeout.
        conflicting = 0
        for seed in range(60):
            adversary = LateMessageAdversary(
                K=4,
                seed=seed,
                late_probability=0.4,
                lateness_factor=4,
                target_senders={0},
            )
            result, _ = run_threepc([1] * 5, adversary=adversary, seed=seed)
            if not result.run.agreement_holds():
                conflicting += 1
        assert conflicting > 0

    def test_consistent_when_on_time(self):
        from repro.adversary.standard import OnTimeAdversary

        for seed in range(8):
            result, _ = run_threepc(
                [1] * 5, adversary=OnTimeAdversary(K=4, seed=seed), seed=seed
            )
            assert result.run.agreement_holds()
            assert result.terminated
