"""Tests for Skeen's decentralized one-phase commit baseline."""

import pytest

from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.errors import ConfigurationError
from repro.protocols.decentralized import DecentralizedCommitProgram
from repro.sim.scheduler import Simulation
from repro.types import Decision


def run_decentralized(votes, adversary=None, seed=0, max_steps=20_000, K=4):
    n = len(votes)
    programs = [
        DecentralizedCommitProgram(pid=p, n=n, initial_vote=v, K=K)
        for p, v in enumerate(votes)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    sim = Simulation(
        programs,
        adversary,
        K=K,
        t=(n - 1) // 2,
        seed=seed,
        max_steps=max_steps,
    )
    return sim.run(), programs


class TestHappyPath:
    def test_all_yes_commits(self):
        result, programs = run_decentralized([1] * 5)
        assert result.terminated
        assert set(result.decisions().values()) == {int(Decision.COMMIT)}
        assert all(p.stats.votes_seen == 5 for p in programs)

    def test_single_no_aborts_everywhere(self):
        result, _ = run_decentralized([1, 1, 0, 1, 1])
        assert set(result.decisions().values()) == {int(Decision.ABORT)}

    def test_never_blocks(self):
        # Even with all votes late, everyone times out and decides.
        adversary = LateMessageAdversary(
            K=4, seed=1, late_probability=1.0, lateness_factor=5
        )
        result, programs = run_decentralized([1] * 5, adversary=adversary)
        assert result.terminated
        assert all(p.stats.timed_out for p in programs)
        assert set(result.decisions().values()) == {0}

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            DecentralizedCommitProgram(pid=0, n=3, initial_vote=1, K=0)

    def test_on_time_jitter_consistent(self):
        for seed in range(5):
            result, _ = run_decentralized(
                [1] * 5, adversary=OnTimeAdversary(K=4, seed=seed), seed=seed
            )
            assert result.run.agreement_holds()
            assert set(result.decisions().values()) == {1}


class TestTimingFragility:
    def test_single_late_vote_splits_decisions(self):
        # The purest form of the paper's opening observation: one late
        # vote copy and the system splits.
        conflicting = 0
        for seed in range(40):
            adversary = LateMessageAdversary(
                K=4,
                seed=seed,
                late_probability=0.15,
                lateness_factor=4,
            )
            result, _ = run_decentralized([1] * 5, adversary=adversary, seed=seed)
            if not result.run.agreement_holds():
                conflicting += 1
        assert conflicting > 0
