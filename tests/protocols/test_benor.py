"""Tests for the Ben-Or baseline."""

import pytest

from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.coins import CoinList
from repro.errors import ConfigurationError
from repro.protocols.benor import BenOrProgram
from repro.sim.scheduler import Simulation


def run_benor(values, t=None, adversary=None, seed=0, max_steps=50_000):
    n = len(values)
    if t is None:
        t = (n - 1) // 2
    programs = [
        BenOrProgram(pid=p, n=n, t=t, initial_value=v)
        for p, v in enumerate(values)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    sim = Simulation(
        programs, adversary, K=4, t=t, seed=seed, max_steps=max_steps
    )
    return sim.run(), programs


class TestBenOr:
    def test_has_no_shared_coins(self):
        program = BenOrProgram(pid=0, n=3, t=1, initial_value=1)
        assert program.coins == CoinList.empty()

    def test_resilience_validation_inherited(self):
        with pytest.raises(ConfigurationError):
            BenOrProgram(pid=0, n=2, t=1, initial_value=0)

    @pytest.mark.parametrize("value", [0, 1])
    def test_validity(self, value):
        result, _ = run_benor([value] * 5)
        assert set(result.decisions().values()) == {value}

    def test_agreement_with_split_inputs(self):
        for seed in range(6):
            result, _ = run_benor(
                [0, 1, 0, 1, 1],
                adversary=RandomAdversary(seed=seed),
                seed=seed,
            )
            assert result.terminated
            values = set(result.decisions().values())
            assert len(values) == 1

    def test_private_coins_used_when_needed(self):
        # Under the splitter with split inputs, some stage usually ends
        # all-bottom, forcing a private flip (no shared list to consult).
        from repro.adversary.splitter import SplitVoteAdversary

        flipped_somewhere = False
        for seed in range(10):
            result, programs = run_benor(
                [0, 1, 0, 1],
                t=1,
                adversary=SplitVoteAdversary(n=4, seed=seed, hold_cycles=3),
                seed=seed,
            )
            flipped_somewhere |= any(
                p.stats.private_coin_stages > 0 for p in programs
            )
            assert all(p.stats.shared_coin_stages == 0 for p in programs)
        assert flipped_somewhere
