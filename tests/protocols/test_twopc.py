"""Tests for the 2PC baseline: correct under synchrony, wrong under late
messages, blocking under coordinator crashes."""

import pytest

from repro.adversary.crash import AdaptiveCrashAdversary
from repro.adversary.standard import LateMessageAdversary, SynchronousAdversary
from repro.errors import ConfigurationError
from repro.protocols.twopc import TimeoutAction, TwoPCProgram
from repro.sim.scheduler import Simulation
from repro.types import Decision


def run_twopc(
    votes,
    adversary=None,
    timeout_action=TimeoutAction.PRESUME_ABORT,
    seed=0,
    max_steps=20_000,
    K=4,
):
    n = len(votes)
    programs = [
        TwoPCProgram(
            pid=p, n=n, initial_vote=v, K=K, timeout_action=timeout_action
        )
        for p, v in enumerate(votes)
    ]
    if adversary is None:
        adversary = SynchronousAdversary(seed=seed)
    sim = Simulation(
        programs,
        adversary,
        K=K,
        t=(n - 1) // 2,
        seed=seed,
        max_steps=max_steps,
    )
    return sim.run(), programs


class TestHappyPath:
    def test_all_yes_commits(self):
        result, programs = run_twopc([1] * 5)
        assert result.terminated
        assert set(result.decisions().values()) == {int(Decision.COMMIT)}

    def test_single_no_aborts(self):
        result, _ = run_twopc([1, 1, 0, 1, 1])
        assert set(result.decisions().values()) == {int(Decision.ABORT)}

    def test_coordinator_no_vote_aborts(self):
        result, _ = run_twopc([0, 1, 1, 1, 1])
        assert set(result.decisions().values()) == {0}

    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            TwoPCProgram(pid=0, n=3, initial_vote=1, K=0)


class TestLateMessages:
    def test_presume_abort_can_produce_wrong_answer(self):
        # The coordinator's fan-out is late; some participant presumes
        # abort after the coordinator committed.  This is the paper's
        # "a single violation of the timing assumptions can cause the
        # protocol to produce the wrong answer".
        conflicting = 0
        for seed in range(40):
            adversary = LateMessageAdversary(
                K=4,
                seed=seed,
                late_probability=0.35,
                lateness_factor=4,
                target_senders={0},
            )
            result, _ = run_twopc([1] * 5, adversary=adversary, seed=seed)
            if not result.run.agreement_holds():
                conflicting += 1
        assert conflicting > 0

    def test_blocking_variant_never_conflicts_under_lateness(self):
        for seed in range(15):
            adversary = LateMessageAdversary(
                K=4, seed=seed, late_probability=0.35, target_senders={0}
            )
            result, _ = run_twopc(
                [1] * 5,
                adversary=adversary,
                timeout_action=TimeoutAction.BLOCK,
                seed=seed,
            )
            assert result.run.agreement_holds()


class TestCoordinatorCrash:
    def crash_mid_fanout(self, seed=0):
        return AdaptiveCrashAdversary(
            victims=[0],
            kill_after_sends=2,
            suppress_to={1, 2, 3, 4},
            seed=seed,
        )

    def test_presume_abort_conflicts_when_commit_fanout_dies(self):
        result, programs = run_twopc([1] * 5, adversary=self.crash_mid_fanout())
        # The coordinator decided commit then crashed mid-fan-out; the
        # others presumed abort: a genuine wrong answer.
        assert not result.run.agreement_holds()
        assert result.decisions()[0] == 1
        assert set(result.decisions()[p] for p in range(1, 5)) == {0}

    def test_blocking_variant_blocks_instead(self):
        result, _ = run_twopc(
            [1] * 5,
            adversary=self.crash_mid_fanout(),
            timeout_action=TimeoutAction.BLOCK,
            max_steps=4_000,
        )
        assert result.run.agreement_holds()
        assert not result.terminated  # the blocking problem of 2PC

    def test_stats_record_presumption(self):
        result, programs = run_twopc([1] * 5, adversary=self.crash_mid_fanout())
        assert any(p.stats.presumed_abort for p in programs[1:])
