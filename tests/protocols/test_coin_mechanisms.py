"""Tests for the dealer (Rabin) and weak-shared (CMS-style) mechanisms."""

import pytest

from repro.adversary.omniscient import OmniscientBalancer
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.api import shared_coins
from repro.core.coin_providers import (
    CoinShare,
    LocalCoinProvider,
    SharedListProvider,
    WeakSharedCoinProvider,
)
from repro.core.coins import CoinList
from repro.errors import ConfigurationError
from repro.protocols.cms import CMSStyleAgreementProgram
from repro.protocols.rabin import DealerCoinAgreementProgram
from repro.sim.scheduler import Simulation


def run_programs(programs, adversary, t, seed=0, max_steps=80_000):
    sim = Simulation(programs, adversary, K=4, t=t, seed=seed, max_steps=max_steps)
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(sim)
    return sim.run()


class TestCoinShare:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoinShare(stage=0, bit=1)
        with pytest.raises(ValueError):
            CoinShare(stage=1, bit=2)

    def test_board_key(self):
        assert CoinShare(stage=3, bit=0).board_key() == ("share", 3)


class TestProviders:
    def test_shared_list_falls_back_to_private(self):
        provider = SharedListProvider(coins=CoinList.from_bits([1]))

        class FakeProgram:
            def flip(self, count):
                return [0] * count

        assert provider.coin(FakeProgram(), 1) == (1, True)
        assert provider.coin(FakeProgram(), 2) == (0, False)

    def test_local_provider_always_private(self):
        class FakeProgram:
            def flip(self, count):
                return [1] * count

        assert LocalCoinProvider().coin(FakeProgram(), 5) == (1, False)

    def test_provider_names(self):
        assert SharedListProvider(CoinList.empty()).name == "shared-list"
        assert LocalCoinProvider().name == "local"
        assert WeakSharedCoinProvider().name == "weak-shared"


class TestDealerProgram:
    def test_behaves_like_protocol_one(self):
        dealt = shared_coins(5, seed=9)
        programs = [
            DealerCoinAgreementProgram(
                pid=p, n=5, t=2, initial_value=p % 2, dealer_coins=dealt
            )
            for p in range(5)
        ]
        result = run_programs(programs, SynchronousAdversary(), t=2)
        assert result.terminated
        assert len(result.run.decision_values()) == 1

    def test_mechanism_label(self):
        assert DealerCoinAgreementProgram.mechanism == "dealer"

    def test_flat_under_balancer(self):
        dealt = shared_coins(4, seed=3)
        programs = [
            DealerCoinAgreementProgram(
                pid=p, n=4, t=1, initial_value=p % 2, dealer_coins=dealt
            )
            for p in range(4)
        ]
        adversary = OmniscientBalancer(n=4, t=1)
        result = run_programs(programs, adversary, t=1)
        assert result.terminated
        assert max(p.stats.stages_started for p in programs) <= 3


class TestCMSStyleProgram:
    def test_fault_envelope_enforced(self):
        with pytest.raises(ConfigurationError, match="n > 6t"):
            CMSStyleAgreementProgram(pid=0, n=6, t=1, initial_value=1)

    def test_envelope_override(self):
        program = CMSStyleAgreementProgram(
            pid=0, n=6, t=1, initial_value=1, allow_sub_resilience=True
        )
        assert program.t == 1

    def test_valid_configuration_works(self):
        n, t = 7, 1
        programs = [
            CMSStyleAgreementProgram(pid=p, n=n, t=t, initial_value=p % 2)
            for p in range(n)
        ]
        result = run_programs(programs, SynchronousAdversary(), t=t)
        assert result.terminated
        assert len(result.run.decision_values()) == 1

    def test_safe_under_random_schedules(self):
        n, t = 7, 1
        for seed in range(5):
            programs = [
                CMSStyleAgreementProgram(pid=p, n=n, t=t, initial_value=p % 2)
                for p in range(n)
            ]
            result = run_programs(
                programs, RandomAdversary(seed=seed), t=t, seed=seed
            )
            values = {
                d for d in result.decisions().values() if d is not None
            }
            assert len(values) <= 1

    def test_uses_shared_coin_telemetry(self):
        # Under the balancer a coin stage happens; the weak coin reports
        # as a shared mechanism in the telemetry split.
        n, t = 4, 1
        programs = [
            CMSStyleAgreementProgram(
                pid=p, n=n, t=t, initial_value=p % 2,
                allow_sub_resilience=True,
            )
            for p in range(n)
        ]
        adversary = OmniscientBalancer(n=n, t=t)
        result = run_programs(programs, adversary, t=t)
        assert result.terminated
        assert any(p.stats.shared_coin_stages > 0 for p in programs)
