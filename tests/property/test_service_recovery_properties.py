"""Property test: WAL replay reconstructs byte-identical node state.

Hypothesis draws random kill/recover schedules (through
``FaultPlan.random`` with a high recovery probability — the same
generator the service campaign track uses) plus vote patterns, runs the
cluster on the virtual clock, and asserts the crash-recovery contract:

* agreement holds across every kill, restart, and torn tail;
* each node's durable records — snapshot plus log suffix — replay to a
  state digest identical to the live process the records came from,
  which is exactly the property restart recovery relies on.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.runtime.virtualtime import run_virtual
from repro.service.cluster import ServiceCluster, node_configs
from repro.service.recovery import replay, state_digest
from repro.service.wal import durable_records

N, T, K = 5, 2, 4

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

plan_seeds = st.integers(0, 50_000)
votes_strategy = st.lists(st.integers(0, 1), min_size=N, max_size=N)
snapshot_periods = st.sampled_from([0, 7])


@SLOW
@given(seed=plan_seeds, votes=votes_strategy, snapshot_every=snapshot_periods)
def test_replay_reconstructs_live_state(seed, votes, snapshot_every):
    plan = FaultPlan.random(N, T, seed, K=K, recovery_probability=0.9)
    configs = node_configs(N, T, votes, K, seed)
    cluster = ServiceCluster(
        configs,
        plan,
        seed=seed,
        K=K,
        snapshot_every=snapshot_every,
        torn_tail_probability=0.5,
    )
    result = run_virtual(cluster.run(deadline=8.0))

    # Safety: no schedule of kills, restarts, and torn tails may ever
    # produce two different decisions.
    assert result.consistent, (
        f"conflicting decisions {result.decisions()} under plan "
        f"{plan.to_dict()}"
    )
    if any(v == 0 for v in votes):
        assert all(d in (0, None) for d in result.decisions().values())

    # Durability: every surviving WAL replays to the exact state of the
    # live process that wrote it.
    for pid in range(N):
        if pid not in cluster.nodes:
            continue
        records = durable_records(cluster.stores[pid]).records
        if not records:
            continue
        replayed = replay(records, expect_config=configs[pid])
        live = cluster.nodes[pid].process
        assert state_digest(replayed.process) == state_digest(live), (
            f"p{pid} replay diverged from live state under plan "
            f"{plan.to_dict()}"
        )
        assert replayed.decision == cluster.nodes[pid].decision
