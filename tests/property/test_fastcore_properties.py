"""Hypothesis equivalence properties: fast core ≡ reference core.

Randomized vote vectors, fault plans, and scripted-adversary schedules
(including the model checker's prefix re-execution shape) must produce
identical observables under both execution cores — byte-identical
serialized runs for the full-trace layer, object-equal metrics for the
sweep layer.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.base import CrashAt, CycleAdversary, DeliverAll
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.adversary.scripted import ScriptedAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_trial
from repro.core.commit import CommitProgram
from repro.faults.plan import FaultPlan
from repro.faults.sim_compile import compile_to_adversary
from repro.sim.fastcore import FastSimulation, fast_commit_trial
from repro.sim.scheduler import Simulation
from repro.telemetry.runio import run_to_records

QUICK = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ADVERSARIES = {
    "synchronous": lambda K, seed: SynchronousAdversary(seed=seed),
    "ontime": lambda K, seed: OnTimeAdversary(K=K, seed=seed),
    "late": lambda K, seed: LateMessageAdversary(K=K, seed=seed),
}

votes_strategy = st.lists(st.integers(0, 1), min_size=3, max_size=8)


def _programs(votes, K, t):
    return [
        CommitProgram(pid=pid, n=len(votes), t=t, initial_vote=vote, K=K)
        for pid, vote in enumerate(votes)
    ]


def _run(sim_class, votes, adversary, K, t, seed, max_steps=20_000):
    simulation = sim_class(
        programs=_programs(votes, K, t),
        adversary=adversary,
        K=K,
        t=t,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation.run()


def _assert_cores_agree(votes, adversary_factory, K, t, seed):
    reference = _run(Simulation, votes, adversary_factory(), K, t, seed)
    fast = _run(FastSimulation, votes, adversary_factory(), K, t, seed)
    assert fast.run == reference.run
    assert run_to_records(fast.run) == run_to_records(reference.run)


class TestTrialEquivalence:
    @QUICK
    @given(
        votes=votes_strategy,
        # OnTimeAdversary needs K >= 2 for its on-time jitter window.
        K=st.integers(2, 5),
        seed=st.integers(0, 2**20),
        adversary=st.sampled_from(sorted(ADVERSARIES)),
    )
    def test_sweep_metrics_equal_reference(self, votes, K, seed, adversary):
        factory = ADVERSARIES[adversary]
        config = CommitTrialConfig(
            votes=votes,
            adversary_factory=lambda s: factory(K, s),
            K=K,
            max_steps=20_000,
        )
        assert fast_commit_trial(config, seed) == run_commit_trial(
            config, seed
        )

    @QUICK
    @given(
        votes=votes_strategy,
        seed=st.integers(0, 2**20),
        crash_cycle=st.integers(1, 6),
        crash_pid=st.integers(0, 7),
    )
    def test_sweep_with_random_crash(self, votes, seed, crash_cycle, crash_pid):
        config = CommitTrialConfig(
            votes=votes,
            adversary_factory=lambda s: OnTimeAdversary(
                K=4,
                seed=s,
                crash_plan=[
                    CrashAt(cycle=crash_cycle, pid=crash_pid % len(votes))
                ],
            ),
            K=4,
            max_steps=20_000,
        )
        assert fast_commit_trial(config, seed) == run_commit_trial(
            config, seed
        )


class TestRunEquivalence:
    @QUICK
    @given(
        votes=votes_strategy,
        plan_seed=st.integers(0, 2**16),
        over_budget=st.booleans(),
    )
    def test_fault_plans(self, votes, plan_seed, over_budget):
        n = len(votes)
        t = (n - 1) // 2
        plan = FaultPlan.random(
            n=n, t=t, seed=plan_seed, K=4, over_budget=over_budget and t < n - 1
        )
        _assert_cores_agree(
            votes, lambda: compile_to_adversary(plan, K=4), 4, t, plan_seed
        )

    @QUICK
    @given(
        votes=votes_strategy,
        seed=st.integers(0, 2**16),
        prefix_length=st.integers(0, 30),
    )
    def test_scripted_prefix_re_execution(self, votes, seed, prefix_length):
        # The model checker's unit of work: replay a recorded decision
        # prefix on a fresh simulation, then complete deterministically.
        n = len(votes)
        t = (n - 1) // 2
        recorder = Simulation(
            programs=_programs(votes, 4, t),
            adversary=OnTimeAdversary(K=4, seed=seed),
            K=4,
            t=t,
            seed=seed,
            max_steps=20_000,
        )
        schedule = []
        while (
            not recorder.all_nonfaulty_done()
            and len(schedule) < prefix_length
        ):
            decision = recorder.adversary.decide(recorder.view)
            schedule.append(decision)
            recorder.apply(decision)

        def scripted():
            return ScriptedAdversary(
                tuple(schedule),
                then=CycleAdversary(seed=seed, delivery=DeliverAll()),
            )

        _assert_cores_agree(votes, scripted, 4, t, seed)
