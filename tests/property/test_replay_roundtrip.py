"""Property: any recorded run replays to identical observable states.

This is determinism of ``run(A, I, F)`` made into a round-trip law:
record a run under an arbitrary adversary, recover its abstract schedule
(deliveries named by provenance), serialise it through JSON, replay it
against fresh programs with the same tapes — and every processor's
decisions, outputs, and clock match the original.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.chaos import ChaosAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.core.commit import CommitProgram
from repro.lowerbound.replay import ScheduleReplayer
from repro.lowerbound.serialize import export_run, schedule_from_dict
from tests.conftest import make_commit_simulation

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def fresh_programs(votes, t):
    return [
        CommitProgram(pid=pid, n=len(votes), t=t, initial_vote=vote, K=4)
        for pid, vote in enumerate(votes)
    ]


class TestReplayRoundTrip:
    @SLOW
    @given(
        seed=st.integers(0, 5_000),
        votes=st.lists(st.integers(0, 1), min_size=3, max_size=6),
        chaotic=st.booleans(),
    )
    def test_schedule_json_replay_matches(self, seed, votes, chaotic):
        n = len(votes)
        t = (n - 1) // 2
        if chaotic:
            adversary = ChaosAdversary(n=n, max_crashes=t, seed=seed)
        else:
            adversary = RandomAdversary(seed=seed)
        sim, _ = make_commit_simulation(
            votes, adversary=adversary, seed=seed, max_steps=15_000
        )
        original = sim.run().run

        schedule = schedule_from_dict(export_run(original, tape_seed=seed))
        replayer = ScheduleReplayer(
            fresh_programs(votes, t), K=4, t=t, seed=seed
        )
        replayer.apply(schedule)
        replayed = replayer.simulation

        for pid in range(n):
            assert replayed.processes[pid].decision == original.decisions[pid]
            assert replayed.processes[pid].output == original.outputs[pid]
            assert replayed.processes[pid].status == original.statuses[pid]
        assert replayed.event_count == original.event_count
