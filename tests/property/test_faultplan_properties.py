"""Property test: within-budget FaultPlans keep Protocol 2 correct.

Hypothesis draws seeded plan shapes (crash budgets, loss levels, vote
patterns) and asserts the paper's end-to-end contract on BOTH tracks:
any plan with at most ``t`` crashes and finite loss yields unanimous
decisions among deciders, and — when the plan guarantees termination —
every nonfaulty processor decides.  The plan itself is drawn through
``FaultPlan.random``, so this also property-tests the campaign's plan
generator.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.commit import CommitProgram
from repro.faults.plan import FaultPlan
from repro.faults.runtime_compile import cluster_from_plan
from repro.faults.sim_compile import compile_to_adversary
from repro.runtime.virtualtime import run_virtual
from repro.sim.scheduler import Simulation

N = 5
T = 2
K = 4

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

plan_seeds = st.integers(0, 50_000)
votes_strategy = st.lists(
    st.integers(0, 1), min_size=N, max_size=N
)


def make_programs(votes):
    return [
        CommitProgram(
            pid=pid,
            n=N,
            t=T,
            initial_vote=vote,
            K=K,
            allow_sub_resilience=True,
        )
        for pid, vote in enumerate(votes)
    ]


def check_outcome(votes, decisions, crashed, terminated, plan):
    decided = {pid: bit for pid, bit in decisions.items() if bit is not None}
    # Agreement: never two different decisions, whatever the schedule.
    assert len(set(decided.values())) <= 1, (
        f"conflicting decisions {decided} under plan {plan.to_dict()}"
    )
    # Abort validity: a 0 vote forbids COMMIT decisions.
    if any(v == 0 for v in votes):
        assert all(bit == 0 for bit in decided.values())
    # Nonblocking: guaranteed-termination plans must terminate.
    if plan.guarantees_termination(T):
        assert terminated, (
            f"within-budget plan blocked: {plan.to_dict()}"
        )
        for pid in range(N):
            if pid not in crashed:
                assert decisions.get(pid) is not None


@given(seed=plan_seeds, votes=votes_strategy)
@SLOW
def test_within_budget_plans_keep_sim_track_correct(seed, votes):
    plan = FaultPlan.random(n=N, t=T, seed=seed, K=K)
    simulation = Simulation(
        programs=make_programs(votes),
        adversary=compile_to_adversary(plan, K=K),
        K=K,
        t=T,
        seed=seed,
        max_steps=30_000,
    )
    result = simulation.run()
    check_outcome(
        votes,
        result.decisions(),
        result.run.faulty(),
        result.terminated,
        plan,
    )


@given(seed=plan_seeds, votes=votes_strategy)
@SLOW
def test_within_budget_plans_keep_runtime_track_correct(seed, votes):
    plan = FaultPlan.random(n=N, t=T, seed=seed, K=K)
    cluster = cluster_from_plan(
        programs=make_programs(votes),
        plan=plan,
        tick_interval=0.002,
        K=K,
    )
    result = run_virtual(cluster.run(deadline=8.0))
    check_outcome(
        votes,
        result.decisions(),
        result.crashed_pids(),
        result.terminated,
        plan,
    )


@given(seed=plan_seeds)
@SLOW
def test_tracks_agree_on_all_commit_decision(seed):
    # With all-commit votes, whatever each track decides must agree
    # with the other track's deciders (both may also validly abort on
    # timeouts — the invariant is unanimity *within* each track, checked
    # above; across tracks we assert both stay safe and live).
    plan = FaultPlan.random(n=N, t=T, seed=seed, K=K)
    votes = [1] * N
    simulation = Simulation(
        programs=make_programs(votes),
        adversary=compile_to_adversary(plan, K=K),
        K=K,
        t=T,
        seed=seed,
        max_steps=30_000,
    )
    sim_result = simulation.run()
    cluster = cluster_from_plan(
        programs=make_programs(votes), plan=plan, tick_interval=0.002, K=K
    )
    run_result = run_virtual(cluster.run(deadline=8.0))
    if plan.guarantees_termination(T):
        assert sim_result.terminated
        assert run_result.terminated
