"""Property tests: the causal span graph is well formed on every run.

Hypothesis drives randomized schedules (``RandomAdversary``) and
seeded fault plans (the campaign's own trial executor) and asserts the
structural invariants the trace layer promises:

* span ids and point-event ids are unique within one recorder (dense,
  starting at 1);
* every span's parent exists, shares no id with the span itself, and
  parent chains reach a root without cycles;
* the causal edge set is acyclic — edges always point forward in
  recording order (``src < dst``), which is acyclicity by construction
  since event ids are a total order consistent with happens-before;
* every edge joins a ``send`` to a ``deliver`` event of the same
  message on the same track, never crossing trial scopes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.random_walk import RandomAdversary
from repro.core.api import run_commit
from repro.faults.campaign import CampaignConfig, case_from_config, execute_trial_case
from repro.trace.build import record_run
from repro.trace.spans import SpanRecorder, use_recorder

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_well_formed(rec: SpanRecorder) -> None:
    span_ids = list(rec.spans)
    assert len(span_ids) == len(set(span_ids))
    assert span_ids == sorted(span_ids)
    event_ids = [event.id for event in rec.events]
    assert len(event_ids) == len(set(event_ids))

    # Parentage: parents exist, and parent chains terminate at a root.
    for span in rec.spans.values():
        if span.parent is not None:
            assert span.parent in rec.spans
            assert span.parent != span.id
        seen = set()
        cursor = span.id
        while cursor is not None:
            assert cursor not in seen, f"parent cycle through span {cursor}"
            seen.add(cursor)
            cursor = rec.spans[cursor].parent

    # Events attach to known spans (or to none at all).
    for event in rec.events:
        if event.span is not None:
            assert event.span in rec.spans

    # Causal edges: forward in recording order (hence acyclic), each
    # joining one send to one deliver of the same message and track.
    events_by_id = {event.id: event for event in rec.events}
    seen_dsts = set()
    for edge in rec.edges:
        assert edge.src < edge.dst
        assert edge.dst not in seen_dsts, "deliver matched twice"
        seen_dsts.add(edge.dst)
        src, dst = events_by_id[edge.src], events_by_id[edge.dst]
        assert src.name == "send"
        assert dst.name == "deliver"
        assert src.track == dst.track
        if "message" in src.attrs:
            assert src.attrs["message"] == dst.attrs["message"]


class TestRandomSchedules:
    @SLOW
    @given(
        seed=st.integers(0, 10_000),
        votes=st.lists(st.integers(0, 1), min_size=3, max_size=6),
        deliver_probability=st.sampled_from([0.3, 0.5, 0.9]),
    )
    def test_span_graph_well_formed(self, seed, votes, deliver_probability):
        outcome = run_commit(
            votes,
            K=4,
            seed=seed,
            adversary=RandomAdversary(
                seed=seed, deliver_probability=deliver_probability
            ),
            max_steps=5_000,
        )
        rec = SpanRecorder()
        record_run(rec, outcome.run)
        assert_well_formed(rec)

    @SLOW
    @given(seeds=st.lists(st.integers(0, 10_000), min_size=2, max_size=3))
    def test_multi_trial_recorder_stays_well_formed(self, seeds):
        # One recorder across several runs: scopes must keep the trials'
        # message keys apart, so no edge may span two trial subtrees.
        rec = SpanRecorder()
        roots = []
        for seed in seeds:
            outcome = run_commit(
                [1, 1, 0, 1, 1],
                K=4,
                seed=seed,
                adversary=RandomAdversary(seed=seed),
                max_steps=5_000,
            )
            roots.append(record_run(rec, outcome.run))
        assert_well_formed(rec)

        def root_of(span_id):
            while rec.spans[span_id].parent is not None:
                span_id = rec.spans[span_id].parent
            return span_id

        events_by_id = {event.id: event for event in rec.events}
        for edge in rec.edges:
            src, dst = events_by_id[edge.src], events_by_id[edge.dst]
            assert root_of(src.span) == root_of(dst.span)


class TestFaultPlans:
    @SLOW
    @given(seed=st.integers(0, 10_000))
    def test_traced_campaign_trial_well_formed(self, seed):
        config = CampaignConfig(
            plans=1, n=5, base_seed=seed, tracks=("sim",), max_steps=5_000
        )
        rec = SpanRecorder()
        with use_recorder(rec):
            case = case_from_config(config, seed)
            execute_trial_case(case)
        assert_well_formed(rec)
        # The campaign wrapper span exists and the sim trial nests in it.
        kinds = {span.kind for span in rec.spans.values()}
        assert "trial" in kinds
