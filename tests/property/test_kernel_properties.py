"""Hypothesis property tests on the simulation kernel primitives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import summarize
from repro.sim.board import BulletinBoard
from repro.sim.message import RawPayload, ReceivedPayload
from repro.sim.rounds import RoundAnalyzer
from repro.sim.tape import RandomTape, TapeCollection
from tests.conftest import make_commit_simulation

QUICK = settings(max_examples=50, deadline=None)


class TestTapeProperties:
    @QUICK
    @given(seed=st.integers(0, 2**32 - 1), reads=st.integers(1, 100))
    def test_tape_values_in_unit_interval(self, seed, reads):
        tape = RandomTape(seed=seed)
        for _ in range(reads):
            assert 0.0 <= tape.next_step_value() < 1.0

    @QUICK
    @given(seed=st.integers(0, 2**32 - 1), count=st.integers(0, 256))
    def test_flip_count_and_domain(self, seed, count):
        tape = RandomTape(seed=seed)
        tape.next_step_value()
        bits = tape.flip(count)
        assert len(bits) == count
        assert set(bits) <= {0, 1}

    @QUICK
    @given(
        master=st.integers(0, 2**31), n=st.integers(1, 16)
    )
    def test_collection_reproducibility(self, master, n):
        a = TapeCollection(n, master)
        b = TapeCollection(n, master)
        for pid in range(n):
            assert a.tape(pid).peek(3) == b.tape(pid).peek(3)


class TestBoardProperties:
    @QUICK
    @given(
        posts=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)), max_size=60
        )
    )
    def test_counts_consistent_with_entries(self, posts):
        board = BulletinBoard()
        for sender, value in posts:
            board.post(
                ReceivedPayload(
                    sender=sender, payload=RawPayload(value), receive_clock=1
                )
            )
        assert len(board) == len(posts)
        everyone = board.count_matching(lambda p: True, distinct_senders=True)
        assert everyone == len({s for s, _ in posts})
        raw_count = board.count_matching(
            lambda p: True, distinct_senders=False
        )
        assert raw_count == len(posts)


class TestStatsProperties:
    @QUICK
    @given(
        samples=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200
        )
    )
    def test_summary_bounds(self, samples):
        import math

        summary = summarize(samples)
        # fmean can differ from the exact range bounds by one ulp.
        low = math.nextafter(summary.minimum, -math.inf)
        high = math.nextafter(summary.maximum, math.inf)
        assert low <= summary.mean <= high
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.count == len(samples)


class TestRoundProperties:
    @QUICK
    @given(seed=st.integers(0, 500), K=st.integers(2, 8))
    def test_round_boundaries_monotone_and_spaced(self, seed, K):
        from repro.adversary.standard import OnTimeAdversary

        sim, _ = make_commit_simulation(
            [1] * 5, K=K, adversary=OnTimeAdversary(K=K, seed=seed), seed=seed
        )
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        for pid in range(5):
            ends = analyzer.boundaries(pid).ends
            assert ends[0] == 0
            assert ends[1] == K
            for previous, current in zip(ends, ends[1:]):
                assert current - previous >= K
