"""Hypothesis property tests on the paper's core invariants.

These drive Protocol 1 and Protocol 2 over randomized vote patterns,
fault budgets, crash schedules, and scheduling seeds, asserting the
correctness conditions that must hold in *every* run:

* agreement — at most one decision value;
* abort validity — any initial 0 forces abort (when deciding);
* commit validity — all-1 + failure-free + on-time forces commit;
* decisions equal program outputs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import LateMessageAdversary, OnTimeAdversary
from tests.conftest import make_agreement_simulation, make_commit_simulation

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

votes_strategy = st.lists(st.integers(0, 1), min_size=3, max_size=7)
seed_strategy = st.integers(0, 10_000)


@st.composite
def adversaries(draw):
    seed = draw(seed_strategy)
    kind = draw(st.sampled_from(["random", "ontime", "late"]))
    if kind == "random":
        return RandomAdversary(
            seed=seed,
            deliver_probability=draw(
                st.floats(0.2, 1.0, allow_nan=False)
            ),
        )
    if kind == "ontime":
        return OnTimeAdversary(K=4, seed=seed)
    return LateMessageAdversary(
        K=4,
        seed=seed,
        late_probability=draw(st.floats(0.0, 0.6, allow_nan=False)),
    )


class TestCommitInvariants:
    @SLOW
    @given(votes=votes_strategy, adversary=adversaries(), seed=seed_strategy)
    def test_agreement_and_abort_validity(self, votes, adversary, seed):
        sim, _ = make_commit_simulation(
            votes, adversary=adversary, seed=seed, max_steps=40_000
        )
        result = sim.run()
        run = result.run
        # Agreement condition, unconditionally.
        assert run.agreement_holds()
        # Abort validity: any initial 0 means nobody decides commit.
        if 0 in votes:
            assert 1 not in run.decision_values()
        # Output/decision coherence.
        for pid, process in enumerate(sim.processes):
            if run.decisions[pid] is not None and process.halted:
                assert int(process.output) == run.decisions[pid]

    @SLOW
    @given(seed=seed_strategy, n=st.integers(3, 7))
    def test_commit_validity_on_well_behaved_runs(self, seed, n):
        sim, _ = make_commit_simulation(
            [1] * n, adversary=OnTimeAdversary(K=4, seed=seed), seed=seed
        )
        result = sim.run()
        run = result.run
        assert run.is_on_time() and not run.faulty()
        assert set(result.decisions().values()) == {1}

    @SLOW
    @given(
        seed=seed_strategy,
        n=st.integers(4, 7),
        crash_data=st.data(),
    )
    def test_safety_under_crashes(self, seed, n, crash_data):
        t = (n - 1) // 2
        crash_count = crash_data.draw(st.integers(0, n - 1))
        victims = crash_data.draw(
            st.permutations(list(range(n))).map(lambda p: p[:crash_count])
        )
        plan = [
            CrashAt(pid=pid, cycle=2 + index)
            for index, pid in enumerate(victims)
        ]
        adversary = ScheduledCrashAdversary(crash_plan=plan, seed=seed)
        sim, _ = make_commit_simulation(
            [1] * n, adversary=adversary, seed=seed, max_steps=6_000
        )
        result = sim.run()
        assert result.run.agreement_holds()
        if crash_count <= t:
            assert result.terminated


class TestAgreementInvariants:
    @SLOW
    @given(
        values=st.lists(st.integers(0, 1), min_size=3, max_size=7),
        seed=seed_strategy,
    )
    def test_agreement_validity_and_consistency(self, values, seed):
        sim, _ = make_agreement_simulation(
            values,
            adversary=RandomAdversary(seed=seed),
            seed=seed,
            max_steps=40_000,
        )
        result = sim.run()
        decided = {d for d in result.decisions().values() if d is not None}
        assert len(decided) <= 1
        if len(set(values)) == 1 and decided:
            assert decided == set(values)

    @SLOW
    @given(seed=seed_strategy)
    def test_decision_stages_within_one(self, seed):
        # Lemma 3 speaks about decisions reached at line 14; ECHO halting
        # keeps every decision a line-14 decision (DECIDE_BROADCAST's
        # adoption path records the adopter's current stage instead, so
        # the skew bound does not apply to it).
        from repro.core.halting import HaltingMode

        sim, programs = make_agreement_simulation(
            [0, 1, 0, 1, 1],
            adversary=RandomAdversary(seed=seed),
            seed=seed,
            halting=HaltingMode.ECHO,
        )
        result = sim.run()
        if result.terminated:
            stages = [p.stats.decision_stage for p in programs]
            assert max(stages) - min(stages) <= 1
