"""Delivery-policy semantics of the non-realistic zoo models.

Each policy is exercised two ways: directly (link classes, hold bounds,
round deadlines, determinism) and end-to-end, where the fast core must
stay byte-identical to the reference core on model-compiled adversaries
even though they are off the fused-sweep whitelist.
"""

import pytest

from repro.core.commit import CommitProgram
from repro.engine.seeds import MODEL_TIMING_STREAM, derive
from repro.faults.plan import CrashFault, FaultPlan
from repro.models import resolve_model
from repro.models.policies import (
    ASYNC,
    PSYNC,
    SYNC,
    GranularPolicy,
    RandomAsyncPolicy,
    RoundClosedPolicy,
)
from repro.sim.fastcore import FastSimulation
from repro.sim.scheduler import Simulation
from repro.telemetry.runio import run_to_records

N, T, K = 5, 2, 4


class TestGranularPolicy:
    def test_link_classes_deterministic_in_seed(self):
        a = GranularPolicy(K=K, seed=7)
        b = GranularPolicy(K=K, seed=7)
        classes = {
            (s, r): a.link_class(s, r)
            for s in range(N)
            for r in range(N)
            if s != r
        }
        assert classes == {
            (s, r): b.link_class(s, r)
            for s in range(N)
            for r in range(N)
            if s != r
        }
        assert set(classes.values()) <= {SYNC, PSYNC, ASYNC}

    def test_class_mix_varies_with_seed(self):
        # Across a handful of seeds the keyed hash must actually move
        # links between classes — a constant assignment would mean the
        # seed is ignored.
        assignments = {
            seed: tuple(
                GranularPolicy(K=K, seed=seed).link_class(s, r)
                for s in range(N)
                for r in range(N)
                if s != r
            )
            for seed in range(8)
        }
        assert len(set(assignments.values())) > 1

    def test_extreme_fractions_pin_every_link(self):
        all_sync = GranularPolicy(K=K, seed=3, sync_fraction=1.0)
        assert all(
            all_sync.link_class(s, r) == SYNC
            for s in range(N)
            for r in range(N)
            if s != r
        )
        all_async = GranularPolicy(
            K=K, seed=3, sync_fraction=0.0, psync_fraction=0.0
        )
        assert all(
            all_async.link_class(s, r) == ASYNC
            for s in range(N)
            for r in range(N)
            if s != r
        )

    def test_runtime_plan_replaces_link_delays(self):
        plan = FaultPlan(
            n=N, seed=5, crashes=(CrashFault(pid=1, cycle=3),)
        )
        mapped = resolve_model("granular").runtime_plan(plan, K=K)
        assert mapped.crashes == plan.crashes
        assert len(mapped.link_delays) == N * (N - 1)
        policy = GranularPolicy(K=K, seed=plan.seed)
        for delay in mapped.link_delays:
            cls = policy.link_class(delay.sender, delay.recipient)
            if cls == SYNC:
                assert (delay.min_cycles, delay.max_cycles) == (1, 1)
            elif cls == PSYNC:
                assert delay.max_cycles == policy.psync_pre_gst_max
            else:
                assert delay.max_cycles == policy.async_max


class TestRandomAsyncPolicy:
    def test_holds_capped(self):
        policy = RandomAsyncPolicy(K=K, seed=2)
        assert policy.max_hold == 4 * K
        assert policy.worst_case_hold == 3 * K

    def test_runtime_track_unsupported(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="runtime-track"):
            resolve_model("random-async").runtime_plan(
                FaultPlan(n=N, seed=0), K=K
            )


class TestRoundClosedPolicy:
    def test_defaults_scale_with_K(self):
        policy = RoundClosedPolicy(K=K, seed=0)
        assert policy.round_cycles == 3 * K
        assert policy.hold_max == K

    def test_model_advertises_dropped_delivery(self):
        assert not resolve_model("round-closed").preserves_eventual_delivery


def _commit_run(sim_class, model_name, seed, max_steps=4_000):
    plan = FaultPlan.random(n=N, t=T, seed=seed, K=K)
    adversary = resolve_model(model_name).compile_plan(
        plan, K=K, seed=derive(seed, MODEL_TIMING_STREAM)
    )
    programs = [
        CommitProgram(pid=pid, n=N, t=T, initial_vote=1, K=K)
        for pid in range(N)
    ]
    simulation = sim_class(
        programs=programs,
        adversary=adversary,
        K=K,
        t=T,
        seed=seed,
        max_steps=max_steps,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation.run()


class TestCrossCoreEquality:
    """Model-compiled adversaries are off the sweep whitelist, but the
    fast core's fallback path must still be byte-identical."""

    @pytest.mark.parametrize(
        "model_name", ["granular", "random-async", "round-closed"]
    )
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fast_core_matches_reference(self, model_name, seed):
        reference = _commit_run(Simulation, model_name, seed)
        fast = _commit_run(FastSimulation, model_name, seed)
        assert fast.run == reference.run
        assert run_to_records(fast.run) == run_to_records(reference.run)
        assert fast.terminated == reference.terminated
