"""Default-model reports are byte-identical to pre-zoo output.

The zoo draws its randomness from dedicated seed streams
(``MODEL_TIMING_STREAM``, ``MODEL_LINK_STREAM``) placed strictly after
the historical streams, and the ``"model"`` report key is emitted only
when non-default — so introducing the zoo must not move a single byte
of any existing artifact.  These digests were pinned on the commit
*before* ``repro.models`` existed; a mismatch means a historical rng
stream or report schema was perturbed.
"""

import hashlib
import json

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.plan import FaultPlan
from repro.mc.config import MCConfig
from repro.mc.explorer import explore

#: sha256 over 40 seeds x 3 draw shapes of FaultPlan.random documents.
PLAN_DIGEST = "e79a31ee722ff1b5daaad1b55a233d9cf04e62f7d29335bafcd9a78b2031d326"

#: sha256 of the default-model campaign report below, any worker count.
CAMPAIGN_DIGEST = (
    "1cd40765391288f868def25707939ea2ec3b4ad35feb97f008fb7f2f33b453d7"
)

#: sha256 of the default-model mc report below, any worker count.
MC_DIGEST = "b477cfdf3abaa9bd0613822e0899b6ad8fe7a625ccebc8ebc0af115913213d77"


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def test_fault_plan_stream_untouched():
    blobs = []
    for seed in range(40):
        for kwargs in (
            {},
            {"over_budget": True},
            {"recovery_probability": 0.5},
        ):
            plan = FaultPlan.random(n=5, t=2, seed=seed, K=4, **kwargs)
            blobs.append(json.dumps(plan.to_dict(), sort_keys=True))
    assert _sha("\n".join(blobs)) == PLAN_DIGEST


@pytest.mark.parametrize("workers", [1, 2])
def test_default_campaign_report_byte_identical(workers):
    report = run_campaign(
        CampaignConfig(n=5, t=2, plans=12, base_seed=3, tracks=("sim",)),
        workers=workers,
    )
    blob = json.dumps(report, sort_keys=True) + "\n"
    assert "model" not in report["config"]
    assert _sha(blob) == CAMPAIGN_DIGEST


@pytest.mark.parametrize("workers", [1, 2])
def test_default_mc_report_byte_identical(workers):
    report = explore(
        MCConfig(
            n=3,
            t=1,
            K=2,
            max_cycles=6,
            crash_budget=1,
            delay_budget=1,
            max_late=1,
            votes=(1, 1, 1),
            split_depth=1,
        ),
        workers=workers,
    ).to_dict()
    blob = json.dumps(report, sort_keys=True) + "\n"
    assert "model" not in report["config"]
    assert _sha(blob) == MC_DIGEST
