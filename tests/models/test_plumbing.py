"""Model plumbing through the campaign and model-checker configs.

The model knob must serialize losslessly, validate eagerly, and — the
part byte-identity depends on — stay *invisible* in default-model
documents: a pre-zoo report and a post-zoo default report are the same
bytes, so the "model" key may only appear when it carries information.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CampaignConfig,
    TrialCase,
    case_from_config,
    run_campaign,
)
from repro.faults.plan import FaultPlan
from repro.mc.config import MCConfig
from repro.mc.explorer import explore


class TestCampaignConfigModel:
    def test_default_model_key_omitted(self):
        assert "model" not in CampaignConfig(plans=1).to_dict()

    def test_non_default_model_key_emitted(self):
        doc = CampaignConfig(
            plans=1, tracks=("sim",), model="granular"
        ).to_dict()
        assert doc["model"] == "granular"

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown timing model"):
            CampaignConfig(plans=1, model="nosuch")

    def test_unsupported_track_rejected(self):
        with pytest.raises(ConfigurationError, match="no analogue"):
            CampaignConfig(
                plans=1, tracks=("runtime",), model="random-async"
            )

    def test_granular_supports_runtime_track(self):
        config = CampaignConfig(
            plans=1, tracks=("sim", "runtime"), model="granular"
        )
        assert config.model == "granular"

    def test_case_inherits_config_model(self):
        config = CampaignConfig(plans=1, tracks=("sim",), model="granular")
        case = case_from_config(config, seed=0)
        assert case.model == "granular"


class TestTrialCaseModel:
    def _case(self, **overrides):
        defaults = dict(
            n=3,
            t=1,
            K=4,
            votes=(1, 1, 1),
            plan=FaultPlan(n=3, seed=0),
            seed=0,
            tracks=("sim",),
        )
        defaults.update(overrides)
        return TrialCase(**defaults)

    def test_round_trip_preserves_model(self):
        case = self._case(model="round-closed")
        assert TrialCase.from_dict(case.to_dict()) == case

    def test_default_model_key_omitted(self):
        assert "model" not in self._case().to_dict()
        # ... and an old (pre-zoo) document still loads.
        doc = self._case().to_dict()
        assert TrialCase.from_dict(doc).model == "realistic"

    def test_dropping_model_voids_termination_obligation(self):
        assert self._case().expect_termination
        assert self._case(model="granular").expect_termination
        assert not self._case(model="round-closed").expect_termination

    def test_scheduled_case_rejects_model(self):
        from repro.sim.decisions import StepDecision

        with pytest.raises(ConfigurationError, match="re-time"):
            self._case(
                model="granular", schedule=(StepDecision(pid=0),)
            )


class TestCampaignUnderModels:
    @pytest.mark.parametrize(
        "model", ["granular", "random-async", "round-closed"]
    )
    def test_sim_track_campaign_keeps_safety(self, model):
        report = run_campaign(
            CampaignConfig(
                n=4,
                t=1,
                plans=4,
                tracks=("sim",),
                max_steps=4_000,
                model=model,
            ),
            workers=1,
        )
        assert report["summary"]["safety_violations"] == 0
        assert report["config"]["model"] == model

    def test_workers_do_not_change_model_report(self):
        config = CampaignConfig(
            n=4, t=1, plans=4, tracks=("sim",), max_steps=4_000,
            model="granular",
        )
        assert run_campaign(config, workers=1) == run_campaign(
            config, workers=2
        )


class TestMCConfigModel:
    def test_default_model_key_omitted(self):
        assert "model" not in MCConfig().to_dict()

    def test_round_trip_preserves_model(self):
        config = MCConfig(por=False, model="granular")
        assert MCConfig.from_dict(config.to_dict()) == config

    def test_non_realistic_requires_no_por(self):
        with pytest.raises(ConfigurationError, match="por=False"):
            MCConfig(model="granular")

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown timing model"):
            MCConfig(por=False, model="nosuch")

    @pytest.mark.parametrize(
        "model", ["granular", "random-async", "round-closed"]
    )
    def test_exploration_is_safe_and_deterministic(self, model):
        config = MCConfig(
            n=3,
            t=1,
            K=2,
            max_cycles=5,
            crash_budget=1,
            votes=(1, 1, 1),
            por=False,
            model=model,
        )
        first = explore(config, workers=1).to_dict()
        assert first["violations"] == []
        assert first["stats"]["states_visited"] > 0
        assert explore(config, workers=2).to_dict() == first

    def test_random_async_prunes_the_realistic_tree(self):
        # The classifier forces/forbids deliveries, so the explored
        # space must be a different (here: much smaller) tree than the
        # unrestricted realistic one.
        bounds = dict(
            n=3, t=1, K=2, max_cycles=6, crash_budget=1,
            delay_budget=1, max_late=1, votes=(1, 1, 1), por=False,
        )
        realistic = explore(MCConfig(**bounds), workers=1).to_dict()
        random_async = explore(
            MCConfig(**bounds, model="random-async"), workers=1
        ).to_dict()
        assert (
            random_async["stats"]["states_visited"]
            < realistic["stats"]["states_visited"]
        )
