"""2PC blocks where Protocol 2 terminates — across timing models.

The paper's motivating contrast (ROADMAP item 4, experiment E6): under a
coordinator crash, 2PC with ``BLOCK`` timeout semantics waits forever on
a decision only the crashed coordinator knew, while Protocol 2 — on the
*same* seeds, the same crash schedule, and the same timing model —
terminates for every correct processor.  The contrast must survive the
model swap: it holds in the paper's realistic model and in granular
synchrony alike, and blocking never costs safety (the undecided
processors are undecided, not inconsistent).

The crash is pinned at cycle 2: the coordinator has collected the yes
votes but crashes before any participant learns the verdict — the
classic uncertainty window.
"""

import pytest

from repro.engine.seeds import MODEL_TIMING_STREAM, derive
from repro.faults.plan import CrashFault, FaultPlan
from repro.faults.safety import SafetyMonitor
from repro.faults.variants import make_programs
from repro.models import resolve_model
from repro.sim.scheduler import Simulation

N, T, K = 5, 2, 4
CRASH_CYCLE = 2
SEEDS = (0, 1, 2, 3)
VOTES = (1,) * N


def _run(variant: str, model_name: str, seed: int):
    plan = FaultPlan(
        n=N, seed=seed, crashes=(CrashFault(pid=0, cycle=CRASH_CYCLE),)
    )
    adversary = resolve_model(model_name).compile_plan(
        plan, K=K, seed=derive(seed, MODEL_TIMING_STREAM)
    )
    programs = make_programs(variant, N, T, list(VOTES), K)
    simulation = Simulation(
        programs=programs,
        adversary=adversary,
        K=K,
        t=T,
        seed=seed,
        max_steps=4_000,
    )
    attach = getattr(adversary, "attach", None)
    if attach is not None:
        attach(simulation)
    return simulation.run()


@pytest.mark.parametrize("model_name", ["realistic", "granular"])
@pytest.mark.parametrize("seed", SEEDS)
class TestCoordinatorCrashContrast:
    def test_blocking_twopc_never_terminates(self, model_name, seed):
        result = _run("twopc-block", model_name, seed)
        assert not result.terminated
        undecided = [
            pid
            for pid in range(1, N)
            if result.run.decisions[pid] is None
        ]
        # At least one yes-voting participant is stuck in the
        # uncertainty window (every vote here is yes).
        assert undecided, "expected blocked participants"

    def test_blocking_twopc_stays_safe(self, model_name, seed):
        result = _run("twopc-block", model_name, seed)
        report = SafetyMonitor(n=N, t=T, votes=list(VOTES)).check(
            decisions={
                pid: result.run.decisions[pid] for pid in range(N)
            },
            crashed=set(result.run.faulty()),
            terminated=result.terminated,
            expect_termination=False,
        )
        assert [v for v in report.violations] == []

    def test_protocol2_terminates_on_the_same_schedule(
        self, model_name, seed
    ):
        result = _run("commit", model_name, seed)
        assert result.terminated
        decisions = {
            result.run.decisions[pid]
            for pid in range(1, N)  # pid 0 crashed
        }
        assert None not in decisions
        assert len(decisions) == 1  # agreement among survivors
