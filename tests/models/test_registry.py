"""The zoo registry: names, descriptions, selection, and the CLI listing."""

import json

import pytest

from repro.adversary.random_walk import RandomAdversary
from repro.cli import main
from repro.errors import ConfigurationError
from repro.models import (
    DEFAULT_MODEL,
    ENV_VAR,
    active_timing_model,
    apply_active_model,
    model_names,
    resolve_model,
    resolve_timing_model,
    set_default_timing_model,
)
from repro.models.base import RealisticModel


class TestRegistry:
    def test_zoo_membership(self):
        assert set(model_names()) == {
            "realistic",
            "granular",
            "random-async",
            "round-closed",
        }

    def test_default_model_listed_first(self):
        names = model_names()
        assert names[0] == DEFAULT_MODEL
        assert list(names[1:]) == sorted(names[1:])

    def test_unknown_name_is_usage_error(self):
        with pytest.raises(ConfigurationError, match="unknown timing model"):
            resolve_model("nosuch")

    def test_realistic_is_the_reference_instance(self):
        model = resolve_model("realistic")
        assert isinstance(model, RealisticModel)
        assert model.fastcore_whitelisted
        assert model.preserves_eventual_delivery
        assert set(model.tracks) == {"sim", "runtime", "service"}

    def test_zoo_models_off_the_fastcore_whitelist(self):
        for name in ("granular", "random-async", "round-closed"):
            assert not resolve_model(name).fastcore_whitelisted, name

    def test_only_round_closed_drops_messages(self):
        droppers = [
            name
            for name in model_names()
            if not resolve_model(name).preserves_eventual_delivery
        ]
        assert droppers == ["round-closed"]

    def test_describe_is_json_ready(self):
        for name in model_names():
            doc = resolve_model(name).describe()
            json.dumps(doc)  # no exotic types
            assert doc["name"] == name
            assert doc["summary"]
            assert doc["source"]
            assert doc["tracks"]
            for knob in doc["knobs"]:
                assert set(knob) == {"name", "default", "help"}


class TestAmbientSelection:
    def test_default_is_realistic(self):
        assert resolve_timing_model() == "realistic"

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "round-closed")
        set_default_timing_model("random-async")
        assert resolve_timing_model("granular") == "granular"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "round-closed")
        set_default_timing_model("granular")
        assert resolve_timing_model() == "granular"

    def test_env_var_reaches_workers_by_inheritance(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "granular")
        assert resolve_timing_model() == "granular"
        assert active_timing_model().name == "granular"

    def test_unknown_default_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            set_default_timing_model("nosuch")

    def test_realistic_apply_is_identity(self):
        adversary = RandomAdversary(seed=1)
        assert apply_active_model(adversary, K=4, seed=1) is adversary

    def test_non_cycle_adversary_rejected(self):
        set_default_timing_model("granular")
        with pytest.raises(ConfigurationError, match="cycle-based"):
            apply_active_model(RandomAdversary(seed=1), K=4, seed=1)


class TestModelsListCLI:
    def test_text_listing(self, capsys):
        assert main(["models", "list"]) == 0
        out = capsys.readouterr().out
        for name in model_names():
            assert name in out
        assert "(default)" in out
        assert "arXiv 2408.12853" in out

    def test_json_listing(self, capsys):
        assert main(["models", "list", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in rows] == list(model_names())

    def test_unknown_model_exits_two(self, capsys):
        code = main(["run-commit", "--votes", "1,1,1", "--model", "nosuch"])
        assert code == 2
        assert "unknown timing model" in capsys.readouterr().err

    def test_model_with_non_cycle_adversary_exits_two(self, capsys):
        code = main(
            [
                "run-commit",
                "--votes",
                "1,1,1",
                "--model",
                "granular",
                "--adversary",
                "random",
            ]
        )
        assert code == 2
        assert "cycle-based" in capsys.readouterr().err

    def test_run_commit_under_model(self, capsys):
        code = main(
            ["run-commit", "--votes", "1,1,1", "--model", "granular"]
        )
        assert code == 0
        assert "decision:" in capsys.readouterr().out
