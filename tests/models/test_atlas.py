"""The degradation atlas: shape, determinism, the gate, rendering."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.models.atlas import (
    ATLAS_SCHEMA,
    AtlasConfig,
    reference_protocol_safe,
    render_atlas,
    run_atlas,
    write_atlas_report,
)

SMALL = dict(n=4, t=1, trials=3, max_steps=3_000)


@pytest.fixture(scope="module")
def small_report():
    return run_atlas(AtlasConfig(**SMALL))


class TestAtlasConfig:
    def test_defaults_cover_the_full_grid(self):
        config = AtlasConfig()
        assert len(config.protocols) >= 4
        assert len(config.models) >= 4
        assert "protocol2" in config.protocols
        assert "realistic" in config.models

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            AtlasConfig(protocols=("nosuch",), **SMALL)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            AtlasConfig(models=("nosuch",), **SMALL)

    def test_fraction_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            AtlasConfig(over_budget_fraction=1.5, **SMALL)


class TestAtlasReport:
    def test_grid_shape(self, small_report):
        config = small_report["config"]
        assert small_report["schema"] == ATLAS_SCHEMA
        expected = {
            f"{protocol}/{model}"
            for protocol in config["protocols"]
            for model in config["models"]
        }
        assert set(small_report["cells"]) == expected
        for cell in small_report["cells"].values():
            assert cell["trials"] == config["trials"]
            assert 0.0 <= cell["termination_rate"] <= 1.0
            assert sum(cell["decisions"].values()) == cell["trials"]

    def test_reference_protocol_gate(self, small_report):
        assert reference_protocol_safe(small_report)
        for name, cell in small_report["cells"].items():
            if name.startswith("protocol2/"):
                assert cell["safety_violations"] == 0, name

    def test_deterministic_and_worker_independent(self, small_report):
        config = AtlasConfig(**SMALL)
        assert run_atlas(config) == small_report
        assert run_atlas(config, workers=2) == small_report

    def test_gate_fails_on_injected_violation(self, small_report):
        doctored = json.loads(json.dumps(small_report))
        doctored["cells"]["protocol2/granular"]["safety_violations"] = 1
        assert not reference_protocol_safe(doctored)

    def test_render_lists_every_cell(self, small_report):
        text = render_atlas(small_report)
        for name in small_report["cells"]:
            assert name in text
        assert "verdict: SAFE" in text

    def test_report_round_trips_through_disk(self, small_report, tmp_path):
        target = write_atlas_report(small_report, tmp_path / "atlas.json")
        assert json.loads(target.read_text()) == small_report


class TestAtlasCLI:
    def _args(self, *extra):
        return [
            "models",
            "atlas",
            "--n",
            "4",
            "--t",
            "1",
            "--trials",
            "2",
            "--max-steps",
            "2000",
            *extra,
        ]

    def test_text_output(self, capsys):
        assert main(self._args()) == 0
        out = capsys.readouterr().out
        assert "protocol degradation atlas" in out
        assert "verdict: SAFE" in out

    def test_json_output_and_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "atlas.json"
        code = main(self._args("--json", "--out", str(out_path)))
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == ATLAS_SCHEMA
        assert json.loads(out_path.read_text()) == report

    def test_subset_grid(self, capsys):
        code = main(
            self._args(
                "--protocols",
                "protocol2,twopc",
                "--models",
                "realistic,round-closed",
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "twopc/round-closed" in out
        assert "threepc" not in out

    def test_unknown_model_exits_two(self, capsys):
        code = main(self._args("--models", "nosuch"))
        assert code == 2
        assert "unknown timing model" in capsys.readouterr().err
