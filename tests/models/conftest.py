"""Shared fixtures: the ambient model selection must never leak.

``--model`` installs a process-wide default and exports
``REPRO_TIMING_MODEL`` for engine workers; in a test process that would
silently re-time every subsequent trial, so both are reset around every
test in this package.
"""

import os

import pytest

from repro.models import ENV_VAR, set_default_timing_model


@pytest.fixture(autouse=True)
def _reset_ambient_model(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_default_timing_model(None)
    yield
    set_default_timing_model(None)
    os.environ.pop(ENV_VAR, None)
