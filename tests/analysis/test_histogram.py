"""Tests for the ASCII histogram helper."""

import pytest

from repro.analysis.histogram import histogram


class TestHistogram:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_single_value_collapses(self):
        text = histogram([3.0, 3.0, 3.0])
        assert "3" in text and "x3" in text

    def test_counts_cover_all_samples(self):
        samples = list(range(1, 101))
        text = histogram(samples, bins=10)
        counts = [
            int(line.split("]")[1].split()[0]) for line in text.splitlines()
        ]
        assert sum(counts) == 100

    def test_bars_scale_with_counts(self):
        samples = [1.0] * 50 + [10.0] * 5
        lines = histogram(samples, bins=2, width=20).splitlines()
        first_bar = lines[0].count("#")
        last_bar = lines[-1].count("#")
        assert first_bar > last_bar

    def test_log_bins_for_heavy_tails(self):
        samples = [1, 2, 4, 8, 16, 32, 64, 128]
        text = histogram(samples, bins=4, log_bins=True)
        assert len(text.splitlines()) == 4
