"""Tests for result tables and parameter sweeps."""

import pytest

from repro.adversary.standard import SynchronousAdversary
from repro.analysis.montecarlo import CommitTrialConfig, run_commit_batch
from repro.analysis.sweep import grid, sweep
from repro.analysis.tables import ResultTable


class TestResultTable:
    def make_table(self):
        table = ResultTable(title="demo", columns=["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        table.add_note("a note")
        return table

    def test_row_arity_checked(self):
        table = ResultTable(title="t", columns=["only"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_render_contains_everything(self):
        text = self.make_table().render()
        assert "demo" in text
        assert "2.50" in text  # float formatting
        assert "-" in text  # None formatting
        assert "* a note" in text

    def test_render_alignment(self):
        lines = self.make_table().render().splitlines()
        header = next(line for line in lines if line.startswith("a"))
        assert "b" in header

    def test_markdown_rendering(self):
        md = self.make_table().to_markdown()
        assert md.startswith("**demo**")
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "*a note*" in md


class TestSweep:
    def test_grid_order(self):
        points = list(grid(n=[1, 2], c=[0, 1]))
        assert points == [
            {"n": 1, "c": 0},
            {"n": 1, "c": 1},
            {"n": 2, "c": 0},
            {"n": 2, "c": 1},
        ]

    def test_sweep_runs_every_point(self):
        def run_point(params):
            config = CommitTrialConfig(
                votes=[1] * params["n"],
                adversary_factory=lambda seed: SynchronousAdversary(seed=seed),
            )
            return run_commit_batch(config, trials=2)

        points = sweep({"n": [3, 5]}, run_point)
        assert len(points) == 2
        assert points[0]["n"] == 3
        assert all(len(point.batch) == 2 for point in points)
