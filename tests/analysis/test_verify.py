"""Tests for the run-verification battery."""

import pytest

from repro.adversary.crash import AdaptiveCrashAdversary
from repro.adversary.standard import LateMessageAdversary
from repro.analysis.verify import verify_commit_run
from repro.protocols.twopc import TwoPCProgram
from repro.sim.scheduler import Simulation
from tests.conftest import make_commit_simulation


class TestVerifyCommitRun:
    def test_happy_path_all_ok(self):
        sim, _ = make_commit_simulation([1] * 5)
        report = verify_commit_run(sim.run().run, [1] * 5)
        assert report.ok
        assert report.violations() == []
        text = report.render()
        assert "agreement" in text and "FAIL" not in text

    def test_vote_count_validated(self):
        sim, _ = make_commit_simulation([1] * 5)
        with pytest.raises(ValueError):
            verify_commit_run(sim.run().run, [1, 1])

    def test_abort_path_ok(self):
        sim, _ = make_commit_simulation([1, 0, 1, 1, 1])
        report = verify_commit_run(sim.run().run, [1, 0, 1, 1, 1])
        assert report.ok

    def test_late_run_ok_but_commit_validity_not_applicable(self):
        adversary = LateMessageAdversary(K=4, seed=2, late_probability=0.5)
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        run = sim.run().run
        report = verify_commit_run(run, [1] * 5)
        assert report.ok
        commit_verdict = next(
            v for v in report.verdicts if "commit validity" in v.condition
        )
        if not run.is_on_time():
            assert not commit_verdict.applicable

    def test_catches_real_violation(self):
        # 2PC with presume-abort under a crash-mid-fanout really does
        # produce conflicting decisions; the verifier must flag it.
        n = 5
        programs = [
            TwoPCProgram(pid=p, n=n, initial_vote=1, K=4) for p in range(n)
        ]
        adversary = AdaptiveCrashAdversary(
            victims=[0], kill_after_sends=2, suppress_to=set(range(1, n))
        )
        sim = Simulation(programs, adversary, K=4, t=2, max_steps=10_000)
        run = sim.run().run
        report = verify_commit_run(run, [1] * n)
        assert not report.ok
        assert any(
            "agreement" in v.condition for v in report.violations()
        )
        assert "FAIL" in report.render()

    def test_report_renders_na_rows(self):
        sim, _ = make_commit_simulation([1, 0, 1, 1, 1])
        report = verify_commit_run(sim.run().run, [1, 0, 1, 1, 1])
        assert "[n/a " in report.render()  # commit validity not applicable
