"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import proportion, summarize
from repro.errors import InsufficientDataError


class TestSummarize:
    def test_rejects_empty(self):
        with pytest.raises(InsufficientDataError):
            summarize([])

    def test_single_sample(self):
        summary = summarize([5.0])
        assert summary.mean == 5.0
        assert summary.stdev == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_basic_statistics(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.mean == 3.0
        assert summary.minimum == 1
        assert summary.maximum == 5
        assert summary.count == 5

    def test_ci_contains_mean(self):
        summary = summarize([1, 2, 3, 4, 5, 6, 7, 8])
        assert summary.ci_low <= summary.mean <= summary.ci_high
        assert summary.ci_high > summary.mean  # nonzero spread

    def test_ci_narrows_with_samples(self):
        small = summarize([1, 2] * 5)
        large = summarize([1, 2] * 500)
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            summarize([1.0], confidence=1.5)

    def test_identical_samples_have_zero_width(self):
        summary = summarize([7.0] * 20)
        assert summary.ci_low == summary.ci_high == 7.0

    def test_str_rendering(self):
        text = str(summarize([1, 2, 3]))
        assert "n=3" in text


class TestProportion:
    def test_basic(self):
        assert proportion(3, 4) == 0.75

    def test_zero_trials_rejected(self):
        with pytest.raises(InsufficientDataError):
            proportion(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            proportion(5, 4)
        with pytest.raises(ValueError):
            proportion(-1, 4)
