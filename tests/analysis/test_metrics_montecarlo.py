"""Tests for metric extraction and the Monte-Carlo runner."""

import pytest

from repro.adversary.standard import SynchronousAdversary
from repro.analysis.metrics import (
    abort_validity_satisfied,
    commit_validity_satisfied,
    extract_metrics,
)
from repro.analysis.montecarlo import (
    CommitTrialConfig,
    TrialBatch,
    run_commit_batch,
    run_commit_trial,
    run_custom_batch,
)
from repro.core.api import ProtocolOutcome
from repro.errors import InsufficientDataError
from tests.conftest import make_commit_simulation


def outcome_and_programs(votes, **kwargs):
    sim, programs = make_commit_simulation(votes, **kwargs)
    return ProtocolOutcome(result=sim.run()), programs


class TestExtractMetrics:
    def test_happy_path_metrics(self):
        outcome, programs = outcome_and_programs([1] * 5)
        metrics = extract_metrics(outcome, programs=programs)
        assert metrics.terminated
        assert metrics.consistent
        assert metrics.decision == 1
        assert metrics.rounds is not None and metrics.rounds >= 1
        assert metrics.ticks is not None
        assert metrics.stages is not None and metrics.stages >= 1
        assert metrics.crashes == 0
        assert metrics.on_time

    def test_without_programs_stage_metrics_absent(self):
        outcome, _ = outcome_and_programs([1] * 3)
        metrics = extract_metrics(outcome)
        assert metrics.stages is None
        assert metrics.decision_stage is None

    def test_abort_metrics(self):
        outcome, programs = outcome_and_programs([1, 0, 1, 1, 1])
        metrics = extract_metrics(outcome, programs=programs)
        assert metrics.decision == 0


class TestValidityCheckers:
    def test_commit_validity_holds_on_happy_path(self):
        outcome, _ = outcome_and_programs([1] * 5)
        assert commit_validity_satisfied(outcome, [1] * 5)

    def test_commit_validity_vacuous_with_abort_vote(self):
        outcome, _ = outcome_and_programs([1, 0, 1, 1, 1])
        assert commit_validity_satisfied(outcome, [1, 0, 1, 1, 1])

    def test_abort_validity_enforced(self):
        outcome, _ = outcome_and_programs([1, 0, 1, 1, 1])
        assert abort_validity_satisfied(outcome, [1, 0, 1, 1, 1])

    def test_abort_validity_vacuous_for_all_ones(self):
        outcome, _ = outcome_and_programs([1] * 5)
        assert abort_validity_satisfied(outcome, [1] * 5)


class TestTrialBatch:
    def make_batch(self, trials=5):
        config = CommitTrialConfig(
            votes=[1] * 5,
            adversary_factory=lambda seed: SynchronousAdversary(seed=seed),
        )
        return run_commit_batch(config, trials=trials)

    def test_batch_size(self):
        assert len(self.make_batch(4)) == 4

    def test_summary_over_metric(self):
        batch = self.make_batch()
        rounds = batch.summary("rounds")
        assert rounds.count == 5
        assert rounds.mean >= 1

    def test_rates(self):
        batch = self.make_batch()
        assert batch.termination_rate == 1.0
        assert batch.consistency_rate == 1.0
        assert batch.commit_rate == 1.0

    def test_summary_of_absent_metric_raises(self):
        batch = TrialBatch()
        batch.add(self.make_batch(1).metrics[0])
        object.__setattr__(batch.metrics[0], "rounds", None)
        with pytest.raises(InsufficientDataError):
            batch.summary("rounds")

    def test_zero_trials_rejected(self):
        config = CommitTrialConfig(
            votes=[1] * 3,
            adversary_factory=lambda seed: SynchronousAdversary(seed=seed),
        )
        with pytest.raises(InsufficientDataError):
            run_commit_batch(config, trials=0)

    def test_votes_factory(self):
        config = CommitTrialConfig(
            votes=lambda seed: [1, 1, seed % 2, 1, 1],
            adversary_factory=lambda seed: SynchronousAdversary(seed=seed),
        )
        even = run_commit_trial(config, seed=0)
        odd = run_commit_trial(config, seed=1)
        assert even.decision == 0
        assert odd.decision == 1

    def test_custom_batch(self):
        config = CommitTrialConfig(
            votes=[1] * 3,
            adversary_factory=lambda seed: SynchronousAdversary(seed=seed),
        )
        batch = run_custom_batch(
            lambda seed: run_commit_trial(config, seed), trials=3
        )
        assert len(batch) == 3
