"""Tests for the bivalence witness (Lemma 15, executably)."""

from repro.lowerbound.valency import bivalence_witness
from repro.types import Decision


class TestBivalenceWitness:
    def test_witness_is_bivalent(self):
        witness = bivalence_witness(n=5, K=4, tape_seed=1)
        assert witness.is_bivalent
        assert witness.fast.unanimous_decision is Decision.COMMIT
        assert witness.slow.unanimous_decision is Decision.ABORT

    def test_same_tapes_different_outcomes(self):
        # The whole point: identical F, identical initial configuration,
        # only the timing differs.
        witness = bivalence_witness(n=5, K=4, tape_seed=2)
        assert witness.tape_seed == 2
        assert witness.fast.terminated and witness.slow.terminated
        assert (
            witness.fast.unanimous_decision
            != witness.slow.unanimous_decision
        )

    def test_fast_run_is_on_time_slow_is_not(self):
        witness = bivalence_witness(n=5, K=4, tape_seed=3)
        assert witness.fast.on_time
        assert not witness.slow.on_time

    def test_holds_across_seeds(self):
        for seed in range(5):
            assert bivalence_witness(n=5, K=4, tape_seed=seed).is_bivalent

    def test_holds_for_other_sizes(self):
        for n in (3, 7):
            assert bivalence_witness(n=n, K=4, tape_seed=0).is_bivalent
