"""Tests for abstract schedules and the proof operators."""

import pytest

from repro.adversary.standard import SynchronousAdversary
from repro.lowerbound.schedules import (
    AbstractEvent,
    AbstractSchedule,
    EventKind,
    Provenance,
    round_robin_skeleton,
    schedule_from_run,
)
from tests.conftest import make_commit_simulation


def simple_schedule() -> AbstractSchedule:
    return AbstractSchedule(
        events=(
            AbstractEvent(pid=0),
            AbstractEvent(
                pid=1, receives=frozenset({Provenance(sender=0, ordinal=0)})
            ),
            AbstractEvent(pid=0),
            AbstractEvent(pid=1),
        )
    )


class TestAbstractEvents:
    def test_fail_event_cannot_receive(self):
        with pytest.raises(ValueError):
            AbstractEvent(
                pid=0,
                kind=EventKind.FAIL,
                receives=frozenset({Provenance(0, 0)}),
            )


class TestOperators:
    def test_restrict_keeps_group_events(self):
        restricted = simple_schedule().restrict({1})
        assert all(e.pid == 1 for e in restricted)
        assert len(restricted) == 2

    def test_kill_replaces_with_failure_steps(self):
        killed = simple_schedule().kill({0})
        zero_events = [e for e in killed if e.pid == 0]
        assert all(e.kind is EventKind.FAIL for e in zero_events)
        assert all(not e.receives for e in zero_events)
        one_events = [e for e in killed if e.pid == 1]
        assert any(e.receives for e in one_events)  # untouched

    def test_deafen_empties_receives_but_keeps_steps(self):
        deafened = simple_schedule().deafen({1})
        one_events = [e for e in deafened if e.pid == 1]
        assert all(e.kind is EventKind.STEP for e in one_events)
        assert all(not e.receives for e in one_events)

    def test_operators_preserve_length(self):
        schedule = simple_schedule()
        assert len(schedule.kill({0})) == len(schedule)
        assert len(schedule.deafen({0})) == len(schedule)

    def test_concatenation(self):
        schedule = simple_schedule()
        assert len(schedule + schedule) == 2 * len(schedule)


class TestLockstepStructure:
    def test_round_robin_detection(self):
        skeleton = round_robin_skeleton(n=3, cycles=2)
        assert skeleton.is_round_robin(3)
        assert not simple_schedule().is_round_robin(3)

    def test_cycle_split(self):
        skeleton = round_robin_skeleton(n=3, cycles=4)
        cycles = skeleton.cycles(3)
        assert len(cycles) == 4
        assert all(len(c) == 3 for c in cycles)

    def test_cycle_split_requires_round_robin(self):
        with pytest.raises(ValueError):
            simple_schedule().cycles(3)

    def test_semicycles_alternate(self):
        skeleton = round_robin_skeleton(n=4, cycles=2)
        semis = skeleton.semicycles(first_group=[0, 1])
        assert len(semis) == 4  # A B A B
        assert {e.pid for e in semis[0]} == {0, 1}
        assert {e.pid for e in semis[1]} == {2, 3}


class TestScheduleFromRun:
    def test_round_trip_shape(self):
        sim, _ = make_commit_simulation([1] * 3, t=1)
        result = sim.run()
        schedule = schedule_from_run(result.run)
        assert len(schedule) == result.run.event_count
        step_events = [e for e in schedule if e.kind is EventKind.STEP]
        assert len(step_events) == len(schedule)  # no crashes here

    def test_provenance_ordinals_count_per_channel(self):
        sim, _ = make_commit_simulation([1] * 3, t=1)
        result = sim.run()
        schedule = schedule_from_run(result.run)
        ordinals: dict[tuple[int, int], list[int]] = {}
        for event in schedule:
            for provenance in event.receives:
                ordinals.setdefault(
                    (provenance.sender, event.pid), []
                ).append(provenance.ordinal)
        for channel_ordinals in ordinals.values():
            assert sorted(channel_ordinals) == list(
                range(len(channel_ordinals))
            )

    def test_crash_events_mapped_to_fail(self):
        from repro.adversary.base import CrashAt
        from repro.adversary.crash import ScheduledCrashAdversary

        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=2, cycle=2)]
        )
        sim, _ = make_commit_simulation([1] * 3, t=1, adversary=adversary)
        result = sim.run()
        schedule = schedule_from_run(result.run)
        fails = [e for e in schedule if e.kind is EventKind.FAIL]
        assert len(fails) == 1
        assert fails[0].pid == 2
