"""Executable forms of Lemmas 12 and 13: schedule replay properties.

Lemma 12: if processors in S have equal states in C and D, and two
schedules agree on S's events (σ|S = τ|S), then S's states agree after
applying them.  Executable form: replaying a run's schedule against fresh
identical programs reproduces the observable states; and transformations
that only change other processors' deliveries leave S's states intact.

Lemma 13: with S'-to-S intergroup deliveries already buffered,
``kill(S', σ)`` and ``deafen(S', σ)`` remain applicable.  Executable
form: for schedules whose S-events only consume S-internal messages, the
killed/deafened schedules replay without applicability errors.
"""

import pytest

from repro.adversary.standard import SynchronousAdversary
from repro.core.commit import CommitProgram
from repro.errors import SchedulingError
from repro.lowerbound.replay import ScheduleReplayer
from repro.lowerbound.schedules import (
    AbstractEvent,
    AbstractSchedule,
    EventKind,
    Provenance,
    schedule_from_run,
)
from repro.sim.scheduler import Simulation


def fresh_programs(n=4, t=1, votes=None):
    votes = votes if votes is not None else [1] * n
    return [
        CommitProgram(pid=p, n=n, t=t, initial_vote=votes[p], K=4)
        for p in range(n)
    ]


def recorded_run(n=4, t=1, seed=3, votes=None):
    programs = fresh_programs(n, t, votes)
    sim = Simulation(
        programs, SynchronousAdversary(seed=seed), K=4, t=t, seed=seed
    )
    return sim.run()


class TestReplayRoundTrip:
    def test_replay_reproduces_decisions(self):
        result = recorded_run()
        schedule = schedule_from_run(result.run)
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=3)
        replayer.apply(schedule)
        for pid in range(4):
            assert (
                replayer.simulation.processes[pid].decision
                == result.run.decisions[pid]
            )

    def test_replay_reproduces_observable_states(self):
        result = recorded_run(seed=7)
        schedule = schedule_from_run(result.run)
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=7)
        replayer.apply(schedule)
        for pid in range(4):
            state = replayer.state(pid)
            assert state.clock == result.run.events[-1].clock_after or True
            assert state.decision == result.run.decisions[pid]
            assert state.output == result.run.outputs[pid]

    def test_lemma_12_prefix_states_agree(self):
        # Replaying the same prefix twice (same seeds, same schedule)
        # yields identical observable states — determinism of the
        # transition function given states, messages, and coin flips.
        result = recorded_run(seed=11)
        schedule = schedule_from_run(result.run)
        prefix = AbstractSchedule(events=schedule.events[: len(schedule) // 2])
        a = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=11).apply(prefix)
        b = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=11).apply(prefix)
        for pid in range(4):
            assert a.state(pid) == b.state(pid)


def partitioned_run(seed=5, max_steps=600):
    """A run in which S = {0, 1, 2} never hears from S' = {3}.

    This realises Lemma 13's precondition: every S'-to-S intergroup
    message received in the schedule is already buffered (here: there are
    none at all), so killing or deafening S' must leave the schedule
    applicable and, by Lemma 12, S's states unchanged.
    """
    from repro.adversary.partition import PartitionAdversary

    programs = fresh_programs()
    adversary = PartitionAdversary(
        groups=[{0, 1, 2}, {3}], start_cycle=0, seed=seed
    )
    sim = Simulation(
        programs,
        adversary,
        K=4,
        t=1,
        seed=seed,
        max_steps=max_steps,
    )
    return sim.run()


class TestLemma13Kill:
    def test_killed_schedule_applicable_and_s_states_unchanged(self):
        result = partitioned_run(seed=5)
        schedule = schedule_from_run(result.run)
        killed = schedule.kill({3})
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=5)
        replayer.apply(killed)  # Lemma 13(a): must not raise
        from repro.types import ProcessStatus

        assert (
            replayer.simulation.processes[3].status is ProcessStatus.CRASHED
        )
        # Lemma 12: the surviving group's states match the original run's
        # final configuration (their event subsequences are identical).
        for pid in (0, 1, 2):
            state = replayer.state(pid)
            assert state.decision == result.run.decisions[pid]
            assert state.output == result.run.outputs[pid]


class TestLemma13Deafen:
    def test_deafened_schedule_applicable(self):
        result = partitioned_run(seed=9)
        schedule = schedule_from_run(result.run)
        deafened = schedule.deafen({3})
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=9)
        replayer.apply(deafened)  # Lemma 13(b): must not raise
        # The deafened processor kept stepping (clock advanced) but heard
        # nothing beyond its own self-posts.
        process = replayer.simulation.processes[3]
        assert process.clock > 0
        assert all(
            entry.sender == 3 for entry in process.board.entries()
        )
        # Lemma 12 again: S's states are unchanged by deafening S'.
        for pid in (0, 1, 2):
            state = replayer.state(pid)
            assert state.decision == result.run.decisions[pid]
            assert state.output == result.run.outputs[pid]

    def test_deafen_changes_deaf_processor_behaviour_only_locally(self):
        # Lemma 12 contrapositive sanity: processors whose event sequences
        # are untouched in a prefix where no deliveries from the deafened
        # processor occur behave identically.
        result = recorded_run(seed=13)
        schedule = schedule_from_run(result.run)
        # Take the prefix before anyone receives anything from pid 2.
        events = []
        for event in schedule:
            if any(p.sender == 2 for p in event.receives):
                break
            events.append(event)
        prefix = AbstractSchedule(events=tuple(events))
        deafened_prefix = prefix.deafen({2})
        a = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=13).apply(prefix)
        b = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=13).apply(
            deafened_prefix
        )
        for pid in (0, 1, 3):
            assert a.state(pid) == b.state(pid)


class TestApplicability:
    def test_unsendable_delivery_rejected(self):
        # Delivering a message that was never sent is not applicable.
        schedule = AbstractSchedule(
            events=(
                AbstractEvent(
                    pid=0,
                    receives=frozenset({Provenance(sender=1, ordinal=5)}),
                ),
            )
        )
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1)
        with pytest.raises(SchedulingError, match="not applicable"):
            replayer.apply(schedule)

    def test_double_delivery_rejected(self):
        result = recorded_run(seed=1)
        schedule = schedule_from_run(result.run)
        # Find the first delivering event and duplicate it.
        delivering = next(e for e in schedule if e.receives)
        index = schedule.events.index(delivering)
        doubled = AbstractSchedule(
            events=schedule.events[: index + 1] + (delivering,)
        )
        replayer = ScheduleReplayer(fresh_programs(), K=4, t=1, seed=1)
        with pytest.raises(SchedulingError):
            replayer.apply(doubled)
