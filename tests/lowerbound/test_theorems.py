"""Tests for the Theorem 14 and Theorem 17 demonstrations."""

import pytest

from repro.lowerbound.theorem14 import (
    demonstrate_boundary,
    kill_half_adversary,
    run_boundary_case,
)
from repro.lowerbound.theorem17 import (
    measure_delay_scaling,
    run_delay_point,
    uniform_delay_adversary,
)


class TestTheorem14:
    def test_kill_half_validation(self):
        with pytest.raises(ValueError):
            kill_half_adversary(n=3, t=3)

    def test_blocks_at_the_bound(self):
        result = run_boundary_case(n=4, t=2, max_steps=4_000)
        assert not result.terminated
        assert result.consistent
        assert result.decided_values == frozenset()

    def test_decides_above_the_bound(self):
        result = run_boundary_case(n=5, t=2, max_steps=15_000)
        assert result.terminated
        assert result.consistent
        # Survivors' GO collection times out -> abort.
        assert result.decided_values == frozenset({0})

    def test_sharp_threshold_pair(self):
        at_bound, above_bound = demonstrate_boundary(t=1, max_steps=4_000)
        assert not at_bound.terminated
        assert above_bound.terminated
        assert at_bound.consistent and above_bound.consistent


class TestTheorem17:
    def test_delay_validation(self):
        with pytest.raises(ValueError):
            uniform_delay_adversary(0)

    def test_single_point(self):
        point = run_delay_point(n=5, delay_cycles=2)
        assert point.terminated
        assert point.decision_ticks is not None
        assert point.decision_rounds is not None

    def test_ticks_grow_with_delay(self):
        points = measure_delay_scaling(n=5, delays=(1, 8, 32))
        ticks = [p.decision_ticks for p in points]
        assert ticks[0] < ticks[1] < ticks[2]
        # Roughly linear: quadrupling the delay should at least double
        # the decision time.
        assert ticks[2] > 2 * ticks[1]

    def test_rounds_stay_bounded(self):
        points = measure_delay_scaling(n=5, delays=(1, 8, 32))
        rounds = [p.decision_rounds for p in points]
        assert max(rounds) <= 14  # the Theorem 10 budget, delay-independent

    def test_large_delays_make_runs_late(self):
        point = run_delay_point(n=5, delay_cycles=16, K=4)
        assert not point.on_time
