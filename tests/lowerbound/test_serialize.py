"""Tests for schedule serialization and cross-process replay."""

import json

import pytest

from repro.core.commit import CommitProgram
from repro.errors import AnalysisError
from repro.lowerbound.replay import ScheduleReplayer
from repro.lowerbound.serialize import (
    export_run,
    load_schedule,
    save_run,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.lowerbound.schedules import schedule_from_run
from tests.conftest import make_commit_simulation


def recorded(seed=3, votes=(1, 1, 1, 1)):
    sim, _ = make_commit_simulation(list(votes), t=1, seed=seed)
    return sim.run().run


class TestRoundTrip:
    def test_dict_round_trip(self):
        run = recorded()
        schedule = schedule_from_run(run)
        data = schedule_to_dict(schedule, n=run.n, t=run.t, K=run.K)
        restored = schedule_from_dict(data)
        assert restored == schedule

    def test_json_serialisable(self):
        run = recorded()
        text = json.dumps(export_run(run, tape_seed=3))
        assert '"events"' in text

    def test_file_round_trip_and_replay(self, tmp_path):
        run = recorded(seed=7)
        path = save_run(run, tmp_path / "run.json", tape_seed=7, note="test")
        schedule, context = load_schedule(path)
        assert context["n"] == 4
        assert context["note"] == "test"
        programs = [
            CommitProgram(pid=p, n=4, t=1, initial_vote=1, K=context["K"])
            for p in range(4)
        ]
        replayer = ScheduleReplayer(
            programs, K=context["K"], t=context["t"], seed=context["tape_seed"]
        )
        replayer.apply(schedule)
        for pid in range(4):
            assert (
                replayer.simulation.processes[pid].decision
                == run.decisions[pid]
            )


class TestValidation:
    def test_version_checked(self):
        with pytest.raises(AnalysisError, match="version"):
            schedule_from_dict({"version": 99, "events": []})

    def test_malformed_event_rejected(self):
        with pytest.raises(AnalysisError, match="malformed"):
            schedule_from_dict(
                {"version": 1, "events": [{"pid": 0, "kind": "bogus"}]}
            )

    def test_missing_fields_rejected(self):
        with pytest.raises(AnalysisError):
            schedule_from_dict({"version": 1, "events": [{}]})

    def test_crash_events_survive(self):
        from repro.adversary.base import CrashAt
        from repro.adversary.crash import ScheduledCrashAdversary

        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=3, cycle=2)]
        )
        sim, _ = make_commit_simulation([1] * 4, t=1, adversary=adversary)
        run = sim.run().run
        restored = schedule_from_dict(export_run(run))
        from repro.lowerbound.schedules import EventKind

        fails = [e for e in restored if e.kind is EventKind.FAIL]
        assert len(fails) == 1 and fails[0].pid == 3
