"""Tests for the protocol message payloads."""

import pytest

from repro.core.messages import (
    BOTTOM,
    DecidedMessage,
    GoMessage,
    StageMessage,
    VoteMessage,
)


class TestStageMessage:
    def test_valid_phase_one(self):
        message = StageMessage(phase=1, stage=3, value=1)
        assert not message.is_s_message
        assert message.board_key() == ("stage", 1, 3)

    def test_s_message_detection(self):
        assert StageMessage(phase=2, stage=1, value=0).is_s_message
        assert not StageMessage(phase=2, stage=1, value=BOTTOM).is_s_message

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            StageMessage(phase=3, stage=1, value=0)

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            StageMessage(phase=1, stage=0, value=0)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            StageMessage(phase=1, stage=1, value=2)

    def test_phase_one_cannot_carry_bottom(self):
        with pytest.raises(ValueError):
            StageMessage(phase=1, stage=1, value=BOTTOM)

    def test_frozen(self):
        message = StageMessage(phase=1, stage=1, value=0)
        with pytest.raises(AttributeError):
            message.value = 1


class TestGoMessage:
    def test_carries_coin_bits(self):
        go = GoMessage(coins=(0, 1, 1))
        assert go.coins == (0, 1, 1)
        assert go.board_key() == ("go",)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            GoMessage(coins=(0, 2))

    def test_empty_coin_list_allowed(self):
        assert GoMessage(coins=()).coins == ()


class TestVoteMessage:
    def test_valid_votes(self):
        assert VoteMessage(vote=0).board_key() == ("vote",)
        assert VoteMessage(vote=1).vote == 1

    def test_invalid_vote(self):
        with pytest.raises(ValueError):
            VoteMessage(vote=2)


class TestDecidedMessage:
    def test_valid(self):
        assert DecidedMessage(value=1).board_key() == ("decided",)

    def test_invalid(self):
        with pytest.raises(ValueError):
            DecidedMessage(value=5)
