"""Tests for Protocol 1 — correctness conditions and the paper's lemmas."""

import pytest

from repro.adversary.base import CrashAt
from repro.adversary.crash import ScheduledCrashAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.core.coins import CoinList
from repro.errors import ConfigurationError
from tests.conftest import make_agreement_simulation


class TestConfiguration:
    def test_rejects_n_at_most_2t(self):
        with pytest.raises(ConfigurationError, match="n > 2t"):
            AgreementProgram(
                pid=0, n=4, t=2, initial_value=1, coins=CoinList.empty()
            )

    def test_sub_resilience_override(self):
        program = AgreementProgram(
            pid=0,
            n=4,
            t=2,
            initial_value=1,
            coins=CoinList.empty(),
            allow_sub_resilience=True,
        )
        assert program.t == 2

    def test_rejects_bad_initial_value(self):
        sim, _ = make_agreement_simulation([1, 1, 1])
        program = AgreementProgram(
            pid=0, n=3, t=1, initial_value=1, coins=CoinList.empty()
        )
        program.initial_value = 2
        from repro.sim.process import SimProcess
        from repro.sim.tape import RandomTape

        process = SimProcess(program, RandomTape(seed=0))
        with pytest.raises(ConfigurationError):
            process.on_step([])


class TestValidity:
    """The agreement problem's validity: unanimous input -> that output."""

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs_decide_that_value(self, value):
        sim, programs = make_agreement_simulation([value] * 5)
        result = sim.run()
        assert result.terminated
        assert all(d == value for d in result.decisions().values())

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_holds_under_random_scheduling(self, value):
        for seed in range(5):
            sim, _ = make_agreement_simulation(
                [value] * 5, adversary=RandomAdversary(seed=seed), seed=seed
            )
            result = sim.run()
            assert set(result.decisions().values()) == {value}

    def test_lemma_1_unanimous_decides_within_one_stage(self):
        # Lemma 1: if every nonfaulty local value is v at the beginning of
        # stage s, everyone decides v by the end of stage s.
        sim, programs = make_agreement_simulation([1] * 5)
        sim.run()
        assert all(p.stats.decision_stage == 1 for p in programs)


class TestAgreementCondition:
    def test_split_inputs_agree(self):
        for seed in range(8):
            sim, _ = make_agreement_simulation(
                [0, 1, 0, 1, 0],
                adversary=RandomAdversary(seed=seed),
                seed=seed,
            )
            result = sim.run()
            values = {d for d in result.decisions().values() if d is not None}
            assert len(values) == 1

    def test_lemma_3_decisions_within_one_stage(self):
        # Lemma 3: if someone decides v at stage s, everyone decides by
        # stage s + 1.  ECHO halting keeps every decision a line-14
        # decision, the setting the lemma talks about (adoption under
        # DECIDE_BROADCAST records the adopter's current stage instead).
        from repro.core.halting import HaltingMode

        for seed in range(8):
            sim, programs = make_agreement_simulation(
                [0, 1, 1, 0, 1],
                adversary=RandomAdversary(seed=seed),
                seed=seed,
                halting=HaltingMode.ECHO,
            )
            result = sim.run()
            assert result.terminated
            stages = [p.stats.decision_stage for p in programs]
            assert max(stages) - min(stages) <= 1


class TestCrashTolerance:
    def test_decides_with_t_crashes(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=3, cycle=2), CrashAt(pid=4, cycle=4)]
        )
        sim, _ = make_agreement_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.terminated
        survivors = {0, 1, 2}
        values = {result.decisions()[pid] for pid in survivors}
        assert len(values) == 1

    def test_agreement_with_crashes_and_split_inputs(self):
        for seed in range(5):
            adversary = ScheduledCrashAdversary(
                crash_plan=[CrashAt(pid=0, cycle=3)], seed=seed
            )
            sim, _ = make_agreement_simulation(
                [0, 1, 0, 1, 1], adversary=adversary, seed=seed
            )
            result = sim.run()
            decided = {
                d for pid, d in result.decisions().items()
                if d is not None
            }
            assert len(decided) <= 1


class TestSharedCoins:
    def test_all_processors_must_share_coins_for_fast_runs(self):
        coins = shared_coins(8, seed=3)
        sim, programs = make_agreement_simulation(
            [0, 1, 0, 1, 0], coins=coins
        )
        result = sim.run()
        assert result.terminated
        # Under the prompt synchronous schedule everyone sees everything:
        # stage 1 has a majority, so the shared coins are not even needed.
        assert all(p.stats.decision_stage <= 2 for p in programs)

    def test_stats_record_coin_usage(self):
        sim, programs = make_agreement_simulation([0, 1, 0, 1, 0])
        sim.run()
        for program in programs:
            stats = program.stats
            assert stats.shared_coin_stages >= 0
            assert stats.private_coin_stages >= 0
            assert stats.decided_value in (0, 1)


class TestReturnValues:
    def test_program_output_equals_decision(self):
        sim, programs = make_agreement_simulation([1, 1, 1, 0, 1])
        result = sim.run()
        for pid, process in enumerate(sim.processes):
            assert process.output == result.decisions()[pid]
