"""Tests for the shared coin list."""

import pytest

from repro.core.coins import CoinList, flip_coin_list


class TestCoinList:
    def test_from_bits(self):
        coins = CoinList.from_bits([0, 1, 1])
        assert len(coins) == 3
        assert coins.bits == (0, 1, 1)

    def test_one_indexed_stage_lookup(self):
        coins = CoinList.from_bits([0, 1])
        assert coins.get(1) == 0
        assert coins.get(2) == 1

    def test_beyond_list_returns_none(self):
        coins = CoinList.from_bits([1])
        assert coins.get(2) is None

    def test_stage_zero_rejected(self):
        with pytest.raises(ValueError):
            CoinList.from_bits([1]).get(0)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            CoinList.from_bits([0, 7])

    def test_empty(self):
        empty = CoinList.empty()
        assert len(empty) == 0
        assert empty.get(1) is None

    def test_immutable(self):
        coins = CoinList.from_bits([1])
        with pytest.raises(AttributeError):
            coins.bits = (0,)


class TestFlipCoinList:
    def test_uses_flip_procedure(self):
        calls = []

        def fake_flip(count):
            calls.append(count)
            return [1] * count

        coins = flip_coin_list(fake_flip, 5)
        assert calls == [5]
        assert coins.bits == (1, 1, 1, 1, 1)

    def test_zero_coins(self):
        assert len(flip_coin_list(lambda c: [], 0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            flip_coin_list(lambda c: [], -1)
