"""Integration tests: Protocol 2 under heavyweight adversaries end to end."""

from repro.adversary.omniscient import OmniscientBalancer
from repro.analysis.verify import verify_commit_run
from repro.sim.rounds import RoundAnalyzer
from tests.conftest import make_commit_simulation


class TestCommitUnderBalancer:
    """Even a content-reading attacker cannot break Protocol 2.

    The balancer can hold the agreement subroutine's first-phase
    messages in balanced patterns, but the GO message already fixed the
    shared coins, so a balanced stage yields unanimity on the next coin.
    """

    def test_all_commit_under_balancer(self):
        for seed in range(5):
            sim, programs = make_commit_simulation(
                [1] * 5, adversary=OmniscientBalancer(n=5, t=2, seed=seed),
                seed=seed, max_steps=80_000,
            )
            result = sim.run()
            assert result.terminated
            assert result.run.agreement_holds()
            stages = [
                p.stats.agreement.stages_started
                for p in programs
                if p.stats.agreement is not None
            ]
            assert stages and max(stages) <= 4

    def test_abort_vote_under_balancer(self):
        sim, _ = make_commit_simulation(
            [1, 0, 1, 1, 1],
            adversary=OmniscientBalancer(n=5, t=2, seed=1),
            seed=1,
            max_steps=80_000,
        )
        result = sim.run()
        assert result.terminated
        assert result.run.decision_values() == {0}


class TestFullBatteryAcrossAdversaries:
    def test_certification_over_the_roster(self):
        from repro.adversary.crash import ScheduledCrashAdversary
        from repro.adversary.base import CrashAt
        from repro.adversary.partition import PartitionAdversary
        from repro.adversary.random_walk import RandomAdversary
        from repro.adversary.standard import (
            LateMessageAdversary,
            OnTimeAdversary,
            SynchronousAdversary,
        )

        # Adversaries are stateful; build a fresh one per run.
        factories = [
            lambda: SynchronousAdversary(seed=1),
            lambda: OnTimeAdversary(K=4, seed=2),
            lambda: LateMessageAdversary(K=4, seed=3, late_probability=0.4),
            lambda: RandomAdversary(seed=4),
            lambda: ScheduledCrashAdversary(
                crash_plan=[CrashAt(pid=4, cycle=2)], seed=5
            ),
            lambda: PartitionAdversary(
                groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=25
            ),
        ]
        for factory in factories:
            for votes in ([1] * 5, [1, 0, 1, 1, 1]):
                sim, _ = make_commit_simulation(
                    list(votes), adversary=factory()
                )
                run = sim.run().run
                report = verify_commit_run(run, list(votes))
                assert report.ok, report.render()

    def test_round_analysis_consistent_with_decisions(self):
        sim, _ = make_commit_simulation([1] * 7, t=3)
        result = sim.run()
        analyzer = RoundAnalyzer(result.run)
        rounds = analyzer.decision_rounds()
        assert all(r is not None and r >= 1 for r in rounds.values())
        assert analyzer.max_decision_round() == max(rounds.values())
