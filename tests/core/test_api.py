"""Tests for the high-level API."""

import pytest

from repro.adversary.standard import LateMessageAdversary
from repro.core.api import (
    default_fault_tolerance,
    run_agreement,
    run_commit,
    shared_coins,
)
from repro.errors import ConfigurationError
from repro.types import Decision


class TestDefaults:
    @pytest.mark.parametrize(
        "n,expected", [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (9, 4)]
    )
    def test_default_fault_tolerance(self, n, expected):
        assert default_fault_tolerance(n) == expected

    def test_shared_coins_reproducible(self):
        assert shared_coins(16, seed=5).bits == shared_coins(16, seed=5).bits

    def test_shared_coins_seed_sensitivity(self):
        assert shared_coins(32, seed=1).bits != shared_coins(32, seed=2).bits


class TestRunCommit:
    def test_requires_processors(self):
        with pytest.raises(ConfigurationError):
            run_commit([])

    def test_default_run_commits(self):
        outcome = run_commit([1] * 5)
        assert outcome.terminated
        assert outcome.unanimous_decision is Decision.COMMIT
        assert outcome.consistent
        assert outcome.on_time

    def test_decision_round_and_ticks_populated(self):
        outcome = run_commit([1] * 5, K=4)
        assert outcome.decision_round is not None
        assert outcome.decision_ticks is not None
        assert outcome.decision_ticks <= 8 * 4  # Remark 1

    def test_abort_path(self):
        outcome = run_commit([1, 1, 0, 1, 1])
        assert outcome.unanimous_decision is Decision.ABORT

    def test_custom_adversary(self):
        outcome = run_commit(
            [1] * 5,
            adversary=LateMessageAdversary(K=4, seed=1, late_probability=0.5),
        )
        assert outcome.consistent

    def test_seed_determinism(self):
        a = run_commit([1] * 5, seed=7)
        b = run_commit([1] * 5, seed=7)
        assert a.decisions == b.decisions
        assert a.run.event_count == b.run.event_count

    def test_unanimous_decision_none_when_undecided(self):
        from repro.adversary.base import CrashAt
        from repro.adversary.crash import ScheduledCrashAdversary

        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=p, cycle=2) for p in (2, 3, 4)]
        )
        outcome = run_commit([1] * 5, adversary=adversary, max_steps=2_000)
        assert outcome.unanimous_decision is None
        assert not outcome.terminated


class TestRunAgreement:
    def test_requires_processors(self):
        with pytest.raises(ConfigurationError):
            run_agreement([])

    def test_unanimous(self):
        outcome = run_agreement([1, 1, 1])
        assert outcome.unanimous_decision is Decision.COMMIT

    def test_split(self):
        outcome = run_agreement([0, 1, 0, 1, 1])
        assert outcome.terminated
        assert len(outcome.decision_values) == 1

    def test_explicit_coins(self):
        outcome = run_agreement([0, 1, 0], coins=shared_coins(3, seed=2))
        assert outcome.terminated
