"""Tests for Protocol 2 — the transaction commit correctness conditions."""

import pytest

from repro.adversary.base import CrashAt
from repro.adversary.crash import AdaptiveCrashAdversary, ScheduledCrashAdversary
from repro.adversary.partition import PartitionAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import (
    LateMessageAdversary,
    OnTimeAdversary,
    SynchronousAdversary,
)
from repro.core.commit import CommitProgram
from repro.errors import ConfigurationError
from repro.types import Decision, Vote
from tests.conftest import make_commit_simulation


class TestConfiguration:
    def test_rejects_n_at_most_2t(self):
        with pytest.raises(ConfigurationError, match="n > 2t"):
            CommitProgram(pid=0, n=4, t=2, initial_vote=1, K=4)

    def test_rejects_bad_K(self):
        with pytest.raises(ConfigurationError):
            CommitProgram(pid=0, n=5, t=2, initial_vote=1, K=0)

    def test_rejects_negative_coin_count(self):
        with pytest.raises(ConfigurationError):
            CommitProgram(pid=0, n=5, t=2, initial_vote=1, K=4, coin_count=-1)

    def test_coordinator_is_processor_zero(self):
        assert CommitProgram(pid=0, n=5, t=2, initial_vote=1, K=4).is_coordinator
        assert not CommitProgram(
            pid=1, n=5, t=2, initial_vote=1, K=4
        ).is_coordinator


class TestCommitValidity:
    """All-1 votes + failure-free + on-time => commit."""

    def test_synchronous_all_commit(self):
        sim, _ = make_commit_simulation([1] * 5)
        result = sim.run()
        run = result.run
        assert run.is_on_time() and not run.faulty()
        assert set(result.decisions().values()) == {int(Decision.COMMIT)}

    @pytest.mark.parametrize("n", [1, 3, 5, 9])
    def test_commit_validity_across_sizes(self, n):
        sim, _ = make_commit_simulation([1] * n)
        result = sim.run()
        assert set(result.decisions().values()) == {1}

    def test_on_time_jitter_still_commits(self):
        for seed in range(5):
            sim, _ = make_commit_simulation(
                [1] * 5, adversary=OnTimeAdversary(K=4, seed=seed), seed=seed
            )
            result = sim.run()
            run = result.run
            assert run.is_on_time()
            assert set(result.decisions().values()) == {1}


class TestAbortValidity:
    """Any initial 0 => abort, no matter what the timing does."""

    @pytest.mark.parametrize("abort_pid", [0, 2, 4])
    def test_single_no_vote_aborts(self, abort_pid):
        votes = [1] * 5
        votes[abort_pid] = 0
        sim, _ = make_commit_simulation(votes)
        result = sim.run()
        assert set(result.decisions().values()) == {int(Decision.ABORT)}

    def test_abort_under_every_adversary(self):
        adversaries = [
            SynchronousAdversary(seed=1),
            OnTimeAdversary(K=4, seed=2),
            LateMessageAdversary(K=4, seed=3, late_probability=0.3),
            RandomAdversary(seed=4),
        ]
        for adversary in adversaries:
            sim, _ = make_commit_simulation([1, 0, 1, 1, 1], adversary=adversary)
            result = sim.run()
            decided = {d for d in result.decisions().values() if d is not None}
            assert decided <= {0}

    def test_all_zero_votes_abort(self):
        sim, _ = make_commit_simulation([0] * 5)
        result = sim.run()
        assert set(result.decisions().values()) == {0}


class TestAgreementCondition:
    def test_no_conflicts_under_late_messages(self):
        for seed in range(10):
            adversary = LateMessageAdversary(
                K=4, seed=seed, late_probability=0.4
            )
            sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
            result = sim.run()
            assert result.run.agreement_holds()

    def test_no_conflicts_under_partitions(self):
        adversary = PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=40
        )
        sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
        result = sim.run()
        assert result.run.agreement_holds()

    def test_no_conflicts_with_coordinator_crash_mid_fanout(self):
        for seed in range(5):
            adversary = AdaptiveCrashAdversary(
                victims=[0],
                kill_after_sends=1,
                suppress_to={1, 2},
                seed=seed,
            )
            sim, _ = make_commit_simulation([1] * 5, adversary=adversary)
            result = sim.run()
            assert result.run.agreement_holds()


class TestGracefulDegradation:
    """Theorem 11: more than t failures never yields conflicting decisions."""

    def test_beyond_budget_blocks_but_stays_consistent(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=p, cycle=2) for p in (2, 3, 4)]
        )
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, max_steps=4_000
        )
        result = sim.run()
        assert not result.terminated
        assert result.run.agreement_holds()

    def test_everyone_but_coordinator_crashes(self):
        adversary = ScheduledCrashAdversary(
            crash_plan=[CrashAt(pid=p, cycle=2) for p in (1, 2, 3, 4)]
        )
        sim, _ = make_commit_simulation(
            [1] * 5, adversary=adversary, max_steps=4_000
        )
        result = sim.run()
        assert result.run.agreement_holds()


class TestStats:
    def test_timeout_telemetry_on_partition(self):
        adversary = PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=40
        )
        sim, programs = make_commit_simulation([1] * 5, adversary=adversary)
        sim.run()
        assert any(p.stats.go_timed_out for p in programs)
        assert all(p.stats.decision is Decision.ABORT for p in programs)

    def test_happy_path_telemetry(self):
        sim, programs = make_commit_simulation([1] * 5)
        sim.run()
        for program in programs:
            stats = program.stats
            assert not stats.go_timed_out
            assert not stats.vote_timed_out
            assert stats.vote_broadcast == 1
            assert stats.agreement_input == 1
            assert stats.abort_known_clock is None
            assert stats.decision is Decision.COMMIT
            assert stats.agreement is not None

    def test_abort_known_clock_set_for_no_voters(self):
        sim, programs = make_commit_simulation([1, 0, 1, 1, 1])
        sim.run()
        assert programs[1].stats.abort_known_clock is not None

    def test_vote_enum_accepted(self):
        sim, _ = make_commit_simulation([Vote.COMMIT] * 3)
        result = sim.run()
        assert set(result.decisions().values()) == {1}


class TestCoinDistribution:
    def test_coordinator_flips_requested_coin_count(self):
        sim, programs = make_commit_simulation([1] * 5, coin_count=12)
        sim.run()
        from repro.core.messages import GoMessage

        go_messages = [
            entry.payload
            for entry in sim.processes[3].board.entries()
            if isinstance(entry.payload, GoMessage)
        ]
        assert go_messages
        assert all(len(go.coins) == 12 for go in go_messages)

    def test_all_processors_see_identical_coins(self):
        sim, _ = make_commit_simulation([1] * 5)
        sim.run()
        from repro.core.messages import GoMessage

        coin_sets = set()
        for process in sim.processes:
            for entry in process.board.entries():
                if isinstance(entry.payload, GoMessage):
                    coin_sets.add(entry.payload.coins)
        assert len(coin_sets) == 1
