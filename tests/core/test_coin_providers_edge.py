"""Edge-case tests for the coin providers."""

from repro.core.coin_providers import CoinShare, WeakSharedCoinProvider
from repro.sim.board import BulletinBoard
from repro.sim.message import ReceivedPayload


class FakeProgram:
    """Minimal Program stand-in for provider unit tests."""

    def __init__(self):
        self.board = BulletinBoard()
        self.broadcasts = []

    def flip(self, count):
        return [1] * count

    def broadcast(self, payload):
        self.broadcasts.append(payload)


class TestWeakSharedCoinProvider:
    def test_stage_start_broadcasts_a_share(self):
        provider = WeakSharedCoinProvider()
        program = FakeProgram()
        provider.on_stage_start(program, stage=2)
        assert len(program.broadcasts) == 1
        share = program.broadcasts[0]
        assert isinstance(share, CoinShare)
        assert share.stage == 2
        assert share.bit in (0, 1)

    def test_coin_uses_lowest_id_share(self):
        provider = WeakSharedCoinProvider()
        program = FakeProgram()
        for sender, bit in ((4, 0), (1, 1), (3, 0)):
            program.board.post(
                ReceivedPayload(
                    sender=sender,
                    payload=CoinShare(stage=1, bit=bit),
                    receive_clock=1,
                )
            )
        bit, shared = provider.coin(program, stage=1)
        assert shared
        assert bit == 1  # sender 1's share

    def test_coin_ignores_other_stages(self):
        provider = WeakSharedCoinProvider()
        program = FakeProgram()
        program.board.post(
            ReceivedPayload(
                sender=0, payload=CoinShare(stage=9, bit=0), receive_clock=1
            )
        )
        bit, shared = provider.coin(program, stage=1)
        # No stage-1 share: private fallback.
        assert not shared
        assert bit == 1  # FakeProgram.flip

    def test_private_fallback_when_no_shares(self):
        provider = WeakSharedCoinProvider()
        program = FakeProgram()
        bit, shared = provider.coin(program, stage=1)
        assert not shared and bit == 1
