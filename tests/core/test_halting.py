"""Tests for the halting modes of the agreement subroutine."""

import pytest

from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import SynchronousAdversary
from repro.core.halting import ECHO_LOOKAHEAD_STAGES, HaltingMode
from tests.conftest import make_agreement_simulation


@pytest.mark.parametrize(
    "halting",
    [HaltingMode.DECIDE_BROADCAST, HaltingMode.ECHO, HaltingMode.LITERAL],
)
class TestAllModes:
    def test_synchronous_unanimous_terminates(self, halting):
        sim, _ = make_agreement_simulation([1] * 5, halting=halting)
        result = sim.run()
        assert result.terminated
        assert set(result.decisions().values()) == {1}

    def test_synchronous_split_agrees(self, halting):
        sim, _ = make_agreement_simulation([0, 1, 0, 1, 1], halting=halting)
        result = sim.run()
        assert result.terminated
        values = set(result.decisions().values())
        assert len(values) == 1

    def test_random_schedule_safe(self, halting):
        for seed in range(4):
            sim, _ = make_agreement_simulation(
                [0, 1, 1, 0, 1],
                halting=halting,
                adversary=RandomAdversary(seed=seed),
                seed=seed,
                max_steps=30_000,
            )
            result = sim.run()
            decided = {
                d for d in result.decisions().values() if d is not None
            }
            assert len(decided) <= 1


class TestDecideBroadcast:
    def test_adoption_recorded_in_stats(self):
        # Under random schedules some processor usually finishes via a
        # DECIDED announcement; the stats must say so when it happens.
        adopted_somewhere = False
        for seed in range(10):
            sim, programs = make_agreement_simulation(
                [0, 1, 0, 1, 1],
                adversary=RandomAdversary(seed=seed),
                seed=seed,
            )
            sim.run()
            adopted_somewhere |= any(
                p.stats.adopted_from_broadcast for p in programs
            )
        assert adopted_somewhere


class TestEcho:
    def test_lookahead_constant_is_sane(self):
        assert ECHO_LOOKAHEAD_STAGES >= 1

    def test_echo_mode_terminates_under_random_schedules(self):
        for seed in range(6):
            sim, _ = make_agreement_simulation(
                [0, 1, 0, 1, 1],
                halting=HaltingMode.ECHO,
                adversary=RandomAdversary(seed=seed),
                seed=seed,
                max_steps=30_000,
            )
            result = sim.run()
            assert result.terminated, f"echo run blocked for seed {seed}"


class TestLiteral:
    def test_literal_runs_one_extra_stage(self):
        sim, programs = make_agreement_simulation(
            [1] * 5, halting=HaltingMode.LITERAL
        )
        result = sim.run()
        assert result.terminated
        # decide at stage 1 (Lemma 1), return at stage 2 (second n-t
        # S-batch) -- the paper's decide-then-return structure.
        for program in programs:
            assert program.stats.decision_stage == 1
            assert program.stats.stages_started == 2
