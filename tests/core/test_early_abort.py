"""Tests for the unilateral early-abort option (Protocol 2, line 7)."""

from repro.adversary.partition import PartitionAdversary
from repro.adversary.random_walk import RandomAdversary
from repro.adversary.standard import SynchronousAdversary
from tests.conftest import make_commit_simulation


class TestEarlyAbort:
    def test_no_voter_decides_before_agreement(self):
        sim_plain, programs_plain = make_commit_simulation(
            [1, 0, 1, 1, 1], early_abort=False
        )
        plain = sim_plain.run()
        sim_early, programs_early = make_commit_simulation(
            [1, 0, 1, 1, 1], early_abort=True
        )
        early = sim_early.run()
        assert plain.run.decision_clocks[1] > early.run.decision_clocks[1]
        assert programs_early[1].stats.early_abort_decided
        assert not programs_plain[1].stats.early_abort_decided

    def test_decisions_identical_with_and_without(self):
        for votes in ([1, 0, 1, 1, 1], [0] * 5, [1, 1, 0, 0, 1]):
            sim_a, _ = make_commit_simulation(list(votes), early_abort=False)
            sim_b, _ = make_commit_simulation(list(votes), early_abort=True)
            assert sim_a.run().decisions() == sim_b.run().decisions()

    def test_commit_path_unaffected(self):
        sim, programs = make_commit_simulation([1] * 5, early_abort=True)
        result = sim.run()
        assert set(result.decisions().values()) == {1}
        assert not any(p.stats.early_abort_decided for p in programs)

    def test_timeout_abort_also_fires_early(self):
        adversary = PartitionAdversary(
            groups=[{0, 1, 2}, {3, 4}], start_cycle=1, heal_cycle=30
        )
        sim, programs = make_commit_simulation(
            [1] * 5, adversary=adversary, early_abort=True
        )
        result = sim.run()
        assert set(result.decisions().values()) == {0}
        assert any(p.stats.early_abort_decided for p in programs)

    def test_safety_under_random_schedules(self):
        for seed in range(6):
            sim, _ = make_commit_simulation(
                [1, 0, 1, 1, 1],
                early_abort=True,
                adversary=RandomAdversary(seed=seed),
                seed=seed,
            )
            result = sim.run()
            assert result.run.agreement_holds()
            assert result.run.decision_values() == {0}
