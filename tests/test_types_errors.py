"""Tests for shared types and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import COORDINATOR_ID, Decision, ProcessStatus, Vote


class TestVote:
    def test_identification_with_bits(self):
        assert int(Vote.ABORT) == 0
        assert int(Vote.COMMIT) == 1

    def test_from_bit(self):
        assert Vote.from_bit(0) is Vote.ABORT
        assert Vote.from_bit(1) is Vote.COMMIT

    def test_from_bit_validation(self):
        with pytest.raises(ValueError):
            Vote.from_bit(2)


class TestDecision:
    def test_identification_with_bits(self):
        assert int(Decision.ABORT) == 0
        assert int(Decision.COMMIT) == 1

    def test_from_bit(self):
        assert Decision.from_bit(1) is Decision.COMMIT

    def test_from_bit_validation(self):
        with pytest.raises(ValueError):
            Decision.from_bit(-1)


class TestConstants:
    def test_coordinator_id_is_zero(self):
        assert COORDINATOR_ID == 0

    def test_process_status_members(self):
        assert {s.name for s in ProcessStatus} == {
            "RUNNING",
            "RETURNED",
            "CRASHED",
        }


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.SchedulingError,
            errors.TapeExhaustedError,
            errors.AdmissibilityError,
            errors.ProtocolViolation,
            errors.ConfigurationError,
            errors.NodeCrashedError,
            errors.InsufficientDataError,
        ]
        for leaf in leaves:
            assert issubclass(leaf, errors.ReproError)

    def test_layer_groupings(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.ConfigurationError, errors.ProtocolError)
        assert issubclass(errors.NodeCrashedError, errors.RuntimeTransportError)
        assert issubclass(errors.InsufficientDataError, errors.AnalysisError)

    def test_catchable_as_family(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("boom")


class TestPackageSurface:
    def test_version_exported(self):
        import repro

        assert repro.__version__

    def test_public_names_importable(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
