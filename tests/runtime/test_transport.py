"""Tests for the asyncio transport."""

import asyncio

import pytest

from repro.errors import NodeCrashedError
from repro.runtime.delays import FixedDelay
from repro.runtime.transport import AsyncTransport
from repro.sim.message import RawPayload


def run(coro):
    return asyncio.run(coro)


class TestAsyncTransport:
    def test_requires_nodes(self):
        async def build():
            return AsyncTransport(n=0)

        with pytest.raises(ValueError):
            run(build())

    def test_delivery(self):
        async def scenario():
            transport = AsyncTransport(n=2, delay_model=FixedDelay(0.0))
            transport.send(0, 1, (RawPayload("hello"),))
            await transport.drain()
            wire = transport.inboxes[1].get_nowait()
            return wire

        wire = run(scenario())
        assert wire.sender == 0
        assert wire.payloads[0].data == "hello"

    def test_crashed_sender_rejected(self):
        async def scenario():
            transport = AsyncTransport(n=2)
            transport.crash(0)
            transport.send(0, 1, (RawPayload("x"),))

        with pytest.raises(NodeCrashedError):
            run(scenario())

    def test_delivery_to_crashed_recipient_dropped(self):
        async def scenario():
            transport = AsyncTransport(n=2, delay_model=FixedDelay(0.0))
            transport.crash(1)
            transport.send(0, 1, (RawPayload("x"),))
            await transport.drain()
            return transport

        transport = run(scenario())
        assert transport.stats.dropped_to_crashed == 1
        assert transport.inboxes[1].empty()

    def test_out_of_range_recipient(self):
        async def scenario():
            transport = AsyncTransport(n=2)
            transport.send(0, 5, (RawPayload("x"),))

        with pytest.raises(ValueError):
            run(scenario())

    def test_stats_counts(self):
        async def scenario():
            transport = AsyncTransport(n=3, delay_model=FixedDelay(0.0))
            for recipient in (1, 2):
                transport.send(0, recipient, (RawPayload("y"),))
            await transport.drain()
            return transport.stats

        stats = run(scenario())
        assert stats.sent == 2
        assert stats.delivered == 2
