"""Cluster fault scheduling: crashes before/mid protocol, degradation.

These pin the paper's graceful-degradation behaviour on the asyncio
track: within-budget crashes leave the survivors deciding unanimously,
while more than ``t`` crashes end in ``nonterminated`` — bounded by the
watchdog, never a hang, and never conflicting decisions.  All runs use
the virtual clock, so "seconds" are virtual and the suite stays fast.
"""

from repro.runtime.cluster import (
    NONTERMINATED,
    TERMINATED,
    CrashInjection,
    run_commit_cluster,
)
from repro.runtime.delays import FixedDelay
from repro.types import Decision

TICK = 0.002


def run_with_crashes(crashes, votes=(1, 1, 1, 1, 1), deadline=8.0, seed=3):
    return run_commit_cluster(
        list(votes),
        K=8,
        delay_model=FixedDelay(0.001),
        tick_interval=TICK,
        seed=seed,
        crashes=crashes,
        deadline=deadline,
        virtual_clock=True,
    )


class TestWithinBudget:
    def test_crash_before_vote(self):
        # Pid 4 dies early, long before the vote exchange; the survivors
        # time out on its GO/vote and abort together.
        result = run_with_crashes([CrashInjection(pid=4, after_seconds=TICK)])
        assert result.outcome == TERMINATED
        decided = {
            pid: bit
            for pid, bit in result.decisions().items()
            if bit is not None
        }
        assert set(decided) == {0, 1, 2, 3}
        assert len(set(decided.values())) == 1

    def test_crash_mid_agreement(self):
        # Pid 3 survives GO and vote collection and dies partway through
        # the run (a clean virtual run completes in ~5 ticks, so 3 ticks
        # is mid-protocol); termination must survive it.
        result = run_with_crashes(
            [CrashInjection(pid=3, after_seconds=3 * TICK)]
        )
        assert result.outcome == TERMINATED
        assert result.crashed_pids() == {3}
        decided = {
            bit for bit in result.decisions().values() if bit is not None
        }
        assert len(decided) == 1

    def test_two_crashes_still_terminate(self):
        result = run_with_crashes(
            [
                CrashInjection(pid=3, after_seconds=1 * TICK),
                CrashInjection(pid=4, after_seconds=3 * TICK),
            ]
        )
        assert result.outcome == TERMINATED
        assert result.crashed_pids() == {3, 4}


class TestOverBudget:
    def test_more_than_t_crashes_report_nonterminated(self):
        # n=5, t=2: three early crashes may block the protocol; the
        # watchdog must convert that into a nonterminated outcome with
        # agreement intact, not a hang.
        result = run_with_crashes(
            [
                CrashInjection(pid=2, after_seconds=TICK),
                CrashInjection(pid=3, after_seconds=TICK),
                CrashInjection(pid=4, after_seconds=TICK),
            ],
            deadline=3.0,
        )
        assert result.outcome == NONTERMINATED
        assert not result.terminated
        decided = {
            bit for bit in result.decisions().values() if bit is not None
        }
        assert len(decided) <= 1  # never conflicting answers

    def test_nonterminated_result_reports_transport_stats(self):
        result = run_with_crashes(
            [
                CrashInjection(pid=2, after_seconds=TICK),
                CrashInjection(pid=3, after_seconds=TICK),
                CrashInjection(pid=4, after_seconds=TICK),
            ],
            deadline=2.0,
        )
        assert result.transport_stats["sent"] > 0


class TestNoFaults:
    def test_clean_run_commits(self):
        result = run_with_crashes([], votes=(1, 1, 1, 1, 1))
        assert result.outcome == TERMINATED
        assert result.unanimous_decision is Decision.COMMIT
