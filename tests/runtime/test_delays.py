"""Tests for delay models."""

import random

import pytest

from repro.runtime.delays import (
    ExponentialDelay,
    FixedDelay,
    SpikeDelay,
    UniformDelay,
)


class TestFixedDelay:
    def test_constant(self):
        model = FixedDelay(seconds=0.01)
        rng = random.Random(0)
        assert all(model.sample(rng) == 0.01 for _ in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedDelay(seconds=-1)


class TestUniformDelay:
    def test_range(self):
        model = UniformDelay(low=0.001, high=0.002)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.001 <= model.sample(rng) <= 0.002

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDelay(low=0.5, high=0.1)


class TestExponentialDelay:
    def test_positive(self):
        model = ExponentialDelay(mean=0.002)
        rng = random.Random(2)
        samples = [model.sample(rng) for _ in range(200)]
        assert all(s >= 0 for s in samples)
        assert 0.001 < sum(samples) / len(samples) < 0.004

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDelay(mean=0)


class TestSpikeDelay:
    def test_mixture(self):
        model = SpikeDelay(
            base_seconds=0.001, late_seconds=0.1, late_probability=0.5
        )
        rng = random.Random(3)
        samples = {model.sample(rng) for _ in range(200)}
        assert samples == {0.001, 0.1}

    def test_zero_probability_never_spikes(self):
        model = SpikeDelay(late_probability=0.0)
        rng = random.Random(4)
        assert all(
            model.sample(rng) == model.base_seconds for _ in range(50)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikeDelay(late_probability=1.5)
        with pytest.raises(ValueError):
            SpikeDelay(base_seconds=0.2, late_seconds=0.1)
