"""Unit tests for the asyncio node driver."""

import asyncio

import pytest

from repro.runtime.delays import FixedDelay
from repro.runtime.node import Node
from repro.runtime.transport import AsyncTransport
from repro.sim.message import RawPayload
from repro.sim.process import Program
from repro.sim.waits import ClockAtLeast, MessageCount
from repro.types import ProcessStatus


class EchoOnce(Program):
    def run(self):
        yield MessageCount(lambda p: True, 1)
        data = self.board.entries()[0].payload.data
        self.broadcast(RawPayload(("echo", data)))
        return data


class TickCounter(Program):
    def run(self):
        yield ClockAtLeast(5)
        return self.clock


def run(coro):
    return asyncio.run(coro)


class TestNode:
    def test_tick_interval_validation(self):
        async def build():
            transport = AsyncTransport(n=1)
            return Node(TickCounter(0, 1), transport, tick_interval=0)

        with pytest.raises(ValueError):
            run(build())

    def test_idle_ticks_advance_clock(self):
        async def scenario():
            transport = AsyncTransport(n=1, delay_model=FixedDelay(0.0))
            node = Node(TickCounter(0, 1), transport, tick_interval=0.001)
            return await node.run(deadline=5.0)

        result = run(scenario())
        assert result.status is ProcessStatus.RETURNED
        assert result.output >= 5
        assert result.steps >= 5

    def test_message_driven_progress(self):
        async def scenario():
            transport = AsyncTransport(n=2, delay_model=FixedDelay(0.0))
            node = Node(EchoOnce(0, 2), transport, tick_interval=0.001)
            transport.send(1, 0, (RawPayload("ping"),))
            return await node.run(deadline=5.0)

        result = run(scenario())
        assert result.status is ProcessStatus.RETURNED
        assert result.output == "ping"

    def test_deadline_stops_blocked_node(self):
        class Forever(Program):
            def run(self):
                yield ClockAtLeast(10**12)

        async def scenario():
            transport = AsyncTransport(n=1)
            node = Node(Forever(0, 1), transport, tick_interval=0.001)
            return await node.run(deadline=0.05)

        result = run(scenario())
        assert result.status is ProcessStatus.RUNNING
        assert result.decision is None

    def test_crash_request_marks_node(self):
        async def scenario():
            transport = AsyncTransport(n=1)
            node = Node(TickCounter(0, 1), transport, tick_interval=0.001)
            node.request_crash()
            return await node.run(deadline=5.0)

        result = run(scenario())
        assert result.status is ProcessStatus.CRASHED
