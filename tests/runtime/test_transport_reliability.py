"""Reliability-layer tests: retransmission, dedup, fault-aware stats.

All scenarios run on the virtual clock so backoff timers cost no wall
time, and all use deterministic link policies (drop-the-first-N
attempts, always-duplicate) so the counters can be asserted exactly.
"""

import random

from repro.runtime.delays import FixedDelay
from repro.runtime.transport import (
    AsyncTransport,
    LinkFaultPolicy,
    LinkVerdict,
    Reliability,
)
from repro.runtime.virtualtime import run_virtual
from repro.sim.message import RawPayload

RELIABILITY = Reliability(base_timeout=0.01, max_backoff=0.1, jitter=0.0)


class DropFirst(LinkFaultPolicy):
    """Drop the first ``count`` forward transmissions, then go clean."""

    def __init__(self, count):
        self.remaining = count

    def verdict(self, sender, recipient, now, rng):
        if sender == 0 and self.remaining > 0:
            self.remaining -= 1
            return LinkVerdict(drop=True)
        return LinkVerdict()


class AlwaysDuplicate(LinkFaultPolicy):
    def verdict(self, sender, recipient, now, rng):
        if sender == 0:
            return LinkVerdict(duplicates=1)
        return LinkVerdict()


class DropAcks(LinkFaultPolicy):
    """Clean forward path; the reverse (ack) direction always drops."""

    def verdict(self, sender, recipient, now, rng):
        if sender == 1:
            return LinkVerdict(drop=True)
        return LinkVerdict()


async def settle(transport, seconds=1.0):
    import asyncio

    await asyncio.sleep(seconds)
    transport.close()


class TestRetransmission:
    def test_dropped_send_is_retransmitted_and_delivered(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropFirst(2),
                reliability=RELIABILITY,
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.dropped_by_faults == 2
        assert transport.stats.retransmitted >= 2
        assert transport.stats.delivered == 1
        assert not transport.inboxes[1].empty()

    def test_first_sends_counted_apart_from_retransmits(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropFirst(1),
                reliability=RELIABILITY,
            )
            for index in range(3):
                transport.send(0, 1, (RawPayload(f"m{index}"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        # ``sent`` counts first sends only; the recovery resend shows up
        # in ``retransmitted`` instead of inflating ``sent``.
        assert transport.stats.sent == 3
        assert transport.stats.retransmitted >= 1
        assert transport.stats.delivered == 3

    def test_ack_loss_causes_redundant_retransmits_not_duplicates(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropAcks(),
                reliability=Reliability(
                    base_timeout=0.01,
                    max_backoff=0.1,
                    jitter=0.0,
                    max_retries=3,
                ),
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.acks_dropped >= 1
        assert transport.stats.retransmitted == 3
        # Every redundant copy was deduped: one delivery to the app.
        assert transport.stats.delivered == 1
        assert transport.stats.duplicates_dropped == 3

    def test_clean_link_never_retransmits(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                reliability=RELIABILITY,
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.retransmitted == 0
        assert transport.stats.delivered == 1


class TestDedup:
    def test_duplicated_copies_are_dropped_at_receiver(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=AlwaysDuplicate(),
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport, seconds=0.1)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.duplicated == 1
        assert transport.stats.duplicates_dropped == 1
        assert transport.stats.delivered == 1
        assert transport.inboxes[1].qsize() == 1

    def test_distinct_messages_are_not_deduped(self):
        async def scenario():
            transport = AsyncTransport(n=3, delay_model=FixedDelay(0.001))
            transport.send(0, 2, (RawPayload("a"),))
            transport.send(1, 2, (RawPayload("a"),))
            transport.send(0, 2, (RawPayload("a"),))
            await settle(transport, seconds=0.1)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.delivered == 3
        assert transport.stats.duplicates_dropped == 0


class TestValidation:
    def test_reliability_rejects_bad_config(self):
        import pytest

        with pytest.raises(ValueError):
            Reliability(base_timeout=0.0)
        with pytest.raises(ValueError):
            Reliability(base_timeout=0.1, max_backoff=0.01)
        with pytest.raises(ValueError):
            Reliability(jitter=2.0)

    def test_stats_as_dict_round_trips_fields(self):
        async def scenario():
            transport = AsyncTransport(n=2, delay_model=FixedDelay(0.0))
            transport.send(0, 1, (RawPayload("x"),))
            await transport.drain()
            return transport

        transport = run_virtual(scenario())
        stats = transport.stats.as_dict()
        assert stats["sent"] == 1
        assert stats["delivered"] == 1
        for key in (
            "retransmitted",
            "duplicated",
            "duplicates_dropped",
            "dropped_by_faults",
            "acks_dropped",
        ):
            assert stats[key] == 0
