"""Reliability-layer tests: retransmission, dedup, fault-aware stats.

All scenarios run on the virtual clock so backoff timers cost no wall
time, and all use deterministic link policies (drop-the-first-N
attempts, always-duplicate) so the counters can be asserted exactly.
"""

import random

from repro.runtime.delays import FixedDelay
from repro.runtime.transport import (
    AsyncTransport,
    LinkFaultPolicy,
    LinkVerdict,
    Reliability,
)
from repro.runtime.virtualtime import run_virtual
from repro.sim.message import RawPayload

RELIABILITY = Reliability(base_timeout=0.01, max_backoff=0.1, jitter=0.0)


class DropFirst(LinkFaultPolicy):
    """Drop the first ``count`` forward transmissions, then go clean."""

    def __init__(self, count):
        self.remaining = count

    def verdict(self, sender, recipient, now, rng):
        if sender == 0 and self.remaining > 0:
            self.remaining -= 1
            return LinkVerdict(drop=True)
        return LinkVerdict()


class AlwaysDuplicate(LinkFaultPolicy):
    def verdict(self, sender, recipient, now, rng):
        if sender == 0:
            return LinkVerdict(duplicates=1)
        return LinkVerdict()


class DropAcks(LinkFaultPolicy):
    """Clean forward path; the reverse (ack) direction always drops."""

    def verdict(self, sender, recipient, now, rng):
        if sender == 1:
            return LinkVerdict(drop=True)
        return LinkVerdict()


async def settle(transport, seconds=1.0):
    import asyncio

    await asyncio.sleep(seconds)
    transport.close()


class TestRetransmission:
    def test_dropped_send_is_retransmitted_and_delivered(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropFirst(2),
                reliability=RELIABILITY,
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.dropped_by_faults == 2
        assert transport.stats.retransmitted >= 2
        assert transport.stats.delivered == 1
        assert not transport.inboxes[1].empty()

    def test_first_sends_counted_apart_from_retransmits(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropFirst(1),
                reliability=RELIABILITY,
            )
            for index in range(3):
                transport.send(0, 1, (RawPayload(f"m{index}"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        # ``sent`` counts first sends only; the recovery resend shows up
        # in ``retransmitted`` instead of inflating ``sent``.
        assert transport.stats.sent == 3
        assert transport.stats.retransmitted >= 1
        assert transport.stats.delivered == 3

    def test_ack_loss_causes_redundant_retransmits_not_duplicates(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=DropAcks(),
                reliability=Reliability(
                    base_timeout=0.01,
                    max_backoff=0.1,
                    jitter=0.0,
                    max_retries=3,
                ),
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.acks_dropped >= 1
        assert transport.stats.retransmitted == 3
        # Every redundant copy was deduped: one delivery to the app.
        assert transport.stats.delivered == 1
        assert transport.stats.duplicates_dropped == 3

    def test_clean_link_never_retransmits(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                reliability=RELIABILITY,
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.retransmitted == 0
        assert transport.stats.delivered == 1


class TestDedup:
    def test_duplicated_copies_are_dropped_at_receiver(self):
        async def scenario():
            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                faults=AlwaysDuplicate(),
            )
            transport.send(0, 1, (RawPayload("x"),))
            await settle(transport, seconds=0.1)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.duplicated == 1
        assert transport.stats.duplicates_dropped == 1
        assert transport.stats.delivered == 1
        assert transport.inboxes[1].qsize() == 1

    def test_distinct_messages_are_not_deduped(self):
        async def scenario():
            transport = AsyncTransport(n=3, delay_model=FixedDelay(0.001))
            transport.send(0, 2, (RawPayload("a"),))
            transport.send(1, 2, (RawPayload("a"),))
            transport.send(0, 2, (RawPayload("a"),))
            await settle(transport, seconds=0.1)
            return transport

        transport = run_virtual(scenario())
        assert transport.stats.delivered == 3
        assert transport.stats.duplicates_dropped == 0


class CoinFlipLoss(LinkFaultPolicy):
    """Drop forward transmissions with probability 1/2, drawn from the
    envelope's own randomness stream."""

    def verdict(self, sender, recipient, now, rng):
        if sender == 0 and rng.random() < 0.5:
            return LinkVerdict(drop=True)
        return LinkVerdict()


class TestScheduleIndependence:
    """Envelope randomness must not depend on task wakeup order.

    Each envelope draws loss verdicts, delays, and retransmit jitter
    from its own keyed generator, so a competing coroutine that (a)
    consumes the transport's shared ``rng`` and (b) injects extra event
    loop wakeups between transport timers must leave every counter and
    every delivery untouched.
    """

    def _run_lossy(self, perturb):
        async def scenario():
            import asyncio

            transport = AsyncTransport(
                n=2,
                delay_model=FixedDelay(0.001),
                seed=11,
                faults=CoinFlipLoss(),
                reliability=Reliability(
                    base_timeout=0.01, max_backoff=0.1, jitter=0.5
                ),
            )
            if perturb:

                async def chatter():
                    while not transport.closed:
                        transport.rng.random()
                        await asyncio.sleep(0.0007)

                competitor = asyncio.get_running_loop().create_task(chatter())
            for index in range(5):
                transport.send(0, 1, (RawPayload(f"m{index}"),))
                await asyncio.sleep(0.003)
            await settle(transport)
            if perturb:
                competitor.cancel()
            return transport

        return run_virtual(scenario())

    @staticmethod
    def _deliveries(transport):
        inbox = transport.inboxes[1]
        messages = []
        while not inbox.empty():
            messages.append(inbox.get_nowait())
        return [(m.sender, m.seq, m.payloads) for m in messages]

    def test_competing_rng_consumer_does_not_shift_schedule(self):
        baseline = self._run_lossy(perturb=False)
        perturbed = self._run_lossy(perturb=True)
        assert perturbed.stats == baseline.stats
        assert self._deliveries(perturbed) == self._deliveries(baseline)
        # The scenario is only probative if the link actually lost
        # something: a retransmission path that never ran proves nothing.
        assert baseline.stats.dropped_by_faults > 0
        assert baseline.stats.retransmitted > 0

    def test_envelope_streams_ignore_shared_generator(self):
        from repro.engine.seeds import ACK_STREAM, ENVELOPE_STREAM

        fresh = AsyncTransport(n=2, seed=7)
        drained = AsyncTransport(n=2, seed=7)
        for _ in range(17):
            drained.rng.random()
        for stream in (ENVELOPE_STREAM, ACK_STREAM):
            for seq in range(4):
                assert (
                    fresh._envelope_rng(stream, 1, seq).random()
                    == drained._envelope_rng(stream, 1, seq).random()
                )

    def test_envelope_streams_are_distinct_per_envelope(self):
        from repro.engine.seeds import ENVELOPE_STREAM

        transport = AsyncTransport(n=3, seed=7)
        draws = {
            (recipient, seq): transport._envelope_rng(
                ENVELOPE_STREAM, recipient, seq
            ).random()
            for recipient in range(3)
            for seq in range(8)
        }
        assert len(set(draws.values())) == len(draws)


class TestValidation:
    def test_reliability_rejects_bad_config(self):
        import pytest

        with pytest.raises(ValueError):
            Reliability(base_timeout=0.0)
        with pytest.raises(ValueError):
            Reliability(base_timeout=0.1, max_backoff=0.01)
        with pytest.raises(ValueError):
            Reliability(jitter=2.0)

    def test_stats_as_dict_round_trips_fields(self):
        async def scenario():
            transport = AsyncTransport(n=2, delay_model=FixedDelay(0.0))
            transport.send(0, 1, (RawPayload("x"),))
            await transport.drain()
            return transport

        transport = run_virtual(scenario())
        stats = transport.stats.as_dict()
        assert stats["sent"] == 1
        assert stats["delivered"] == 1
        for key in (
            "retransmitted",
            "duplicated",
            "duplicates_dropped",
            "dropped_by_faults",
            "acks_dropped",
        ):
            assert stats[key] == 0
