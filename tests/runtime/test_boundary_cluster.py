"""Cross-track check: the Theorem 14 boundary also shows on asyncio.

The deterministic track demonstrates blocking at ``n = 2t`` (E7); the
asyncio runtime must agree: kill ``t`` of ``2t`` nodes and the survivors
hang until the deadline; kill ``t`` of ``2t + 1`` and they decide.
"""

import asyncio

from repro.core.commit import CommitProgram
from repro.runtime.cluster import Cluster, CrashInjection
from repro.runtime.delays import FixedDelay
from repro.types import ProcessStatus


def run_boundary(n: int, t: int, deadline: float):
    programs = [
        CommitProgram(
            pid=p, n=n, t=t, initial_vote=1, K=6, allow_sub_resilience=True
        )
        for p in range(n)
    ]
    crashes = [
        CrashInjection(pid=pid, after_seconds=0.002)
        for pid in range(1, t + 1)
    ]
    cluster = Cluster(
        programs=programs,
        delay_model=FixedDelay(0.001),
        tick_interval=0.002,
        crashes=crashes,
        seed=5,
    )
    return asyncio.run(cluster.run(deadline=deadline))


class TestBoundaryOnAsyncio:
    def test_blocks_at_n_equals_2t(self):
        result = run_boundary(n=4, t=2, deadline=1.5)
        survivors = [
            r for r in result.nodes if r.status is not ProcessStatus.CRASHED
        ]
        assert survivors
        assert all(r.status is ProcessStatus.RUNNING for r in survivors)
        assert result.consistent  # blocked, never wrong

    def test_decides_at_n_equals_2t_plus_1(self):
        result = run_boundary(n=5, t=2, deadline=8.0)
        survivors = [
            r for r in result.nodes if r.status is not ProcessStatus.CRASHED
        ]
        assert all(r.status is ProcessStatus.RETURNED for r in survivors)
        assert result.consistent
        assert result.decision_values() <= {0}
