"""Integration tests for the asyncio cluster runtime."""

import asyncio

import pytest

from repro.core.commit import CommitProgram
from repro.errors import ConfigurationError
from repro.runtime.cluster import Cluster, CrashInjection, run_commit_cluster
from repro.runtime.delays import FixedDelay, SpikeDelay, UniformDelay
from repro.types import Decision, ProcessStatus


class TestClusterValidation:
    def test_requires_nodes(self):
        with pytest.raises(ConfigurationError):
            Cluster(programs=[])

    def test_requires_ordered_pids(self):
        programs = [
            CommitProgram(pid=1, n=2, t=0, initial_vote=1, K=4),
            CommitProgram(pid=0, n=2, t=0, initial_vote=1, K=4),
        ]
        with pytest.raises(ConfigurationError):
            Cluster(programs=programs)

    def test_crash_target_in_range(self):
        programs = [CommitProgram(pid=0, n=1, t=0, initial_vote=1, K=4)]
        with pytest.raises(ConfigurationError):
            Cluster(programs=programs, crashes=[CrashInjection(5, 0.1)])


class TestCommitCluster:
    def test_all_commit(self):
        result = run_commit_cluster(
            [1] * 5, delay_model=UniformDelay(), seed=1, deadline=8.0
        )
        assert result.nonfaulty_all_returned()
        assert result.unanimous_decision is Decision.COMMIT

    def test_abort_on_no_vote(self):
        result = run_commit_cluster(
            [1, 1, 0, 1, 1], delay_model=FixedDelay(0.001), seed=2, deadline=8.0
        )
        assert result.unanimous_decision is Decision.ABORT

    def test_spiky_network_stays_consistent(self):
        result = run_commit_cluster(
            [1] * 5,
            delay_model=SpikeDelay(late_probability=0.2),
            seed=3,
            deadline=8.0,
        )
        assert result.consistent

    def test_crash_injection_tolerated(self):
        result = run_commit_cluster(
            [1] * 5,
            delay_model=FixedDelay(0.001),
            seed=4,
            crashes=[CrashInjection(pid=4, after_seconds=0.003)],
            deadline=8.0,
        )
        assert result.consistent
        statuses = {r.pid: r.status for r in result.nodes}
        assert statuses[4] is ProcessStatus.CRASHED
        assert result.nonfaulty_all_returned()

    def test_decisions_map_complete(self):
        result = run_commit_cluster(
            [1] * 3, delay_model=FixedDelay(0.001), seed=5, deadline=8.0
        )
        assert set(result.decisions()) == {0, 1, 2}

    def test_same_programs_as_simulator(self):
        # The cluster hosts CommitProgram directly — no separate protocol
        # implementation exists for the runtime track.
        cluster = Cluster(
            programs=[
                CommitProgram(pid=p, n=3, t=1, initial_vote=1, K=8)
                for p in range(3)
            ],
            delay_model=FixedDelay(0.001),
        )
        result = asyncio.run(cluster.run(deadline=8.0))
        assert result.unanimous_decision is Decision.COMMIT
