"""The asyncio runtime hosts *any* Program — agreement included."""

import asyncio

from repro.core.agreement import AgreementProgram
from repro.core.api import shared_coins
from repro.protocols.benor import BenOrProgram
from repro.runtime.cluster import Cluster
from repro.runtime.delays import UniformDelay


def run_cluster(programs, seed=0, deadline=10.0):
    cluster = Cluster(
        programs=programs,
        delay_model=UniformDelay(low=0.0005, high=0.002),
        tick_interval=0.002,
        seed=seed,
    )
    return asyncio.run(cluster.run(deadline=deadline))


class TestAgreementOnAsyncio:
    def test_protocol_one_agrees(self):
        coins = shared_coins(5, seed=11)
        programs = [
            AgreementProgram(pid=p, n=5, t=2, initial_value=p % 2, coins=coins)
            for p in range(5)
        ]
        result = run_cluster(programs, seed=11)
        assert result.nonfaulty_all_returned()
        assert result.consistent
        assert len(result.decision_values()) == 1

    def test_unanimous_validity(self):
        coins = shared_coins(3, seed=4)
        programs = [
            AgreementProgram(pid=p, n=3, t=1, initial_value=1, coins=coins)
            for p in range(3)
        ]
        result = run_cluster(programs, seed=4)
        assert result.decision_values() == {1}

    def test_benor_agrees_on_asyncio(self):
        programs = [
            BenOrProgram(pid=p, n=5, t=2, initial_value=p % 2)
            for p in range(5)
        ]
        result = run_cluster(programs, seed=7)
        assert result.nonfaulty_all_returned()
        assert len(result.decision_values()) == 1
