"""Virtual-clock event loop: fast-forward semantics and determinism."""

import asyncio
import time

from repro.runtime.virtualtime import (
    VirtualClockEventLoop,
    run_virtual,
    virtual_loop_factory,
)


class TestFastForward:
    def test_sleeps_cost_no_wall_clock(self):
        async def long_nap():
            await asyncio.sleep(60.0)
            return asyncio.get_running_loop().time()

        start = time.monotonic()
        virtual_end = run_virtual(long_nap())
        elapsed = time.monotonic() - start
        assert virtual_end >= 60.0
        assert elapsed < 5.0

    def test_timers_fire_in_order(self):
        fired = []

        async def schedule():
            loop = asyncio.get_running_loop()
            loop.call_later(0.3, fired.append, "c")
            loop.call_later(0.1, fired.append, "a")
            loop.call_later(0.2, fired.append, "b")
            await asyncio.sleep(1.0)

        run_virtual(schedule())
        assert fired == ["a", "b", "c"]

    def test_concurrent_sleepers_interleave(self):
        order = []

        async def sleeper(name, delay):
            await asyncio.sleep(delay)
            order.append(name)

        async def main():
            await asyncio.gather(
                sleeper("slow", 0.5),
                sleeper("fast", 0.1),
                sleeper("mid", 0.3),
            )

        run_virtual(main())
        assert order == ["fast", "mid", "slow"]

    def test_wait_for_timeout_fires(self):
        async def main():
            try:
                await asyncio.wait_for(asyncio.sleep(10.0), timeout=0.5)
            except asyncio.TimeoutError:
                return "timed out"
            return "slept"

        assert run_virtual(main()) == "timed out"


class TestDeterminism:
    def test_same_program_same_virtual_trace(self):
        async def busy():
            loop = asyncio.get_running_loop()
            stamps = []
            for delay in (0.05, 0.2, 0.01):
                await asyncio.sleep(delay)
                stamps.append(loop.time())
            return stamps

        assert run_virtual(busy()) == run_virtual(busy())

    def test_factory_builds_fresh_loops(self):
        loop_a = virtual_loop_factory()
        loop_b = virtual_loop_factory()
        try:
            assert isinstance(loop_a, VirtualClockEventLoop)
            assert loop_a is not loop_b
            assert loop_a.time() == 0.0
        finally:
            loop_a.close()
            loop_b.close()
